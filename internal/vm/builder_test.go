package vm

import (
	"strings"
	"testing"
)

func expectBuildPanic(t *testing.T, wantSub string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want %q)", wantSub)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, wantSub) {
			t.Fatalf("panic %v, want substring %q", r, wantSub)
		}
	}()
	f()
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	expectBuildPanic(t, "undefined label", func() {
		NewCodeBuilder().Br("nowhere").Build("m", 0, 0, false)
	})
}

func TestBuilderDuplicateLabelFails(t *testing.T) {
	expectBuildPanic(t, "duplicate label", func() {
		NewCodeBuilder().Label("a").Label("a").Build("m", 0, 0, false)
	})
}

func TestBuilderOperandMisuse(t *testing.T) {
	expectBuildPanic(t, "requires an operand", func() {
		NewCodeBuilder().Op(OpLdLoc).Build("m", 0, 0, false)
	})
	expectBuildPanic(t, "does not take a u16", func() {
		NewCodeBuilder().U16(OpAdd, 1).Build("m", 0, 0, false)
	})
	expectBuildPanic(t, "out of range", func() {
		NewCodeBuilder().U16(OpLdLoc, 1<<17).Build("m", 0, 0, false)
	})
}

func TestBuilderUnknownFieldFails(t *testing.T) {
	v := testVM()
	pt := pointClass(v)
	expectBuildPanic(t, "no field", func() {
		NewCodeBuilder().LdFld(pt, "z").Build("m", 0, 0, false)
	})
}

func TestBuilderBranchOffsets(t *testing.T) {
	// Forward and backward branches both resolve to correct targets.
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(3).StLoc(0).
		LdcI4(0).StLoc(1).
		Label("top").
		LdLoc(0).BrFalse("end").
		LdLoc(1).LdcI4(1).Op(OpAdd).StLoc(1).
		LdLoc(0).LdcI4(1).Op(OpSub).StLoc(0).
		Br("top").
		Label("end").
		LdLoc(1).RetVal().
		Build("m", 0, 2, true))
	if got := runMethod(t, v, m); got.Int() != 3 {
		t.Errorf("loop count %d", got.Int())
	}
}

func TestBuilderInternNameUnknown(t *testing.T) {
	v := testVM()
	expectBuildPanic(t, "unknown internal call", func() {
		NewCodeBuilder().InternName(v, "no.such.call").Build("m", 0, 0, false)
	})
}

func TestInterpStackOps(t *testing.T) {
	v := testVM()
	// dup and pop.
	m := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(21).Op(OpDup).Op(OpAdd). // 42
		LdcI4(99).Op(OpPop).           // discard
		RetVal().
		Build("m", 0, 0, true))
	if got := runMethod(t, v, m); got.Int() != 42 {
		t.Errorf("got %d", got.Int())
	}
}

func TestInterpBitwiseOps(t *testing.T) {
	v := testVM()
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 3, 4, 48},
		{OpShr, -16, 2, -4},
		{OpRem, 17, 5, 2},
	}
	for _, tc := range cases {
		m := v.AddMethod(nil, NewCodeBuilder().
			LdArg(0).LdArg(1).Op(tc.op).RetVal().
			Build("m_"+tc.op.Name(), 2, 0, true))
		if got := runMethod(t, v, m, IntValue(tc.a), IntValue(tc.b)); got.Int() != tc.want {
			t.Errorf("%s(%d,%d) = %d, want %d", tc.op.Name(), tc.a, tc.b, got.Int(), tc.want)
		}
	}
}

func TestInterpNotNeg(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).Op(OpNot).RetVal().Build("not", 1, 0, true))
	if got := runMethod(t, v, m, IntValue(0)); got.Int() != -1 {
		t.Errorf("not 0 = %d", got.Int())
	}
	m2 := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).Op(OpNegF).RetVal().Build("negf", 1, 0, true))
	if got := runMethod(t, v, m2, FloatValue(2.5)); got.Float() != -2.5 {
		t.Errorf("negf = %g", got.Float())
	}
}

func TestInterpComparisons(t *testing.T) {
	v := testVM()
	intCases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{OpCeq, 5, 5, true}, {OpCeq, 5, 6, false},
		{OpClt, -1, 0, true}, {OpClt, 0, 0, false},
		{OpCgt, 7, 3, true}, {OpCgt, 3, 7, false},
	}
	for _, tc := range intCases {
		m := v.AddMethod(nil, NewCodeBuilder().
			LdArg(0).LdArg(1).Op(tc.op).RetVal().Build("c"+tc.op.Name(), 2, 0, true))
		if got := runMethod(t, v, m, IntValue(tc.a), IntValue(tc.b)); got.Bool() != tc.want {
			t.Errorf("%s(%d,%d) = %v", tc.op.Name(), tc.a, tc.b, got.Bool())
		}
	}
	floatCases := []struct {
		op   Op
		a, b float64
		want bool
	}{
		{OpCeqF, 1.5, 1.5, true},
		{OpCltF, 1.0, 1.5, true},
		{OpCgtF, 2.0, 1.5, true},
		{OpCgtF, 1.0, 1.5, false},
	}
	for _, tc := range floatCases {
		m := v.AddMethod(nil, NewCodeBuilder().
			LdArg(0).LdArg(1).Op(tc.op).RetVal().Build("f"+tc.op.Name(), 2, 0, true))
		if got := runMethod(t, v, m, FloatValue(tc.a), FloatValue(tc.b)); got.Bool() != tc.want {
			t.Errorf("%s(%g,%g) = %v", tc.op.Name(), tc.a, tc.b, got.Bool())
		}
	}
}

func TestInterpArgsMismatch(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().Ret().Build("m", 2, 0, false))
	v.WithThread("t", func(th *Thread) {
		if _, err := th.Call(m, IntValue(1)); err == nil {
			t.Error("arity mismatch accepted")
		}
	})
}

func TestInterpStArg(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).LdcI4(1).Op(OpAdd).StArg(0).
		LdArg(0).RetVal().
		Build("m", 1, 0, true))
	if got := runMethod(t, v, m, IntValue(9)); got.Int() != 10 {
		t.Errorf("starg result %d", got.Int())
	}
}

func TestInterpFellOffEnd(t *testing.T) {
	// A method without ret: treated as void return.
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().LdcI4(1).Op(OpPop).Build("m", 0, 0, false))
	v.WithThread("t", func(th *Thread) {
		if _, err := th.Call(m); err != nil {
			t.Errorf("fell-off-end: %v", err)
		}
	})
}

func TestOpcodeTableConsistency(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < opCount; op++ {
		name := opTable[op].name
		if name == "" {
			t.Errorf("opcode %d has no name", op)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("duplicate mnemonic %q (%d and %d)", name, prev, op)
		}
		seen[name] = op
		if got := opByName[name]; got != op {
			t.Errorf("opByName[%q] = %d, want %d", name, got, op)
		}
	}
}

func TestDisassembleEveryOpcode(t *testing.T) {
	// Build a (non-executable) method containing one instance of every
	// opcode and confirm the disassembler renders each mnemonic.
	v := testVM()
	pt := pointClass(v)
	callee := v.AddMethod(nil, NewCodeBuilder().Ret().Build("callee", 0, 0, false))
	vcallee := &Method{Name: "vm", NArgs: 1, Virtual: true}
	v.AddMethod(pt, vcallee)
	vcallee.Code = NewCodeBuilder().Ret().Build("vm", 1, 0, false).Code
	g := v.AddGlobal("g")
	i32arr := v.ArrayType(KindInt32, nil, 1)
	md := v.ArrayType(KindFloat64, nil, 2)

	b := NewCodeBuilder()
	b.Op(OpNop).LdcI4(1).LdcI8(2).LdcR8(3.5).LdNull().
		LdLoc(0).StLoc(0).LdArg(0).StArg(0).
		Op(OpDup).Op(OpPop).
		Op(OpAdd).Op(OpSub).Op(OpMul).Op(OpDiv).Op(OpRem).Op(OpNeg).
		Op(OpAnd).Op(OpOr).Op(OpXor).Op(OpShl).Op(OpShr).Op(OpNot).
		Op(OpAddF).Op(OpSubF).Op(OpMulF).Op(OpDivF).Op(OpNegF).
		Op(OpCeq).Op(OpClt).Op(OpCgt).Op(OpCeqF).Op(OpCltF).Op(OpCgtF).
		Op(OpConvI2F).Op(OpConvF2I).
		Label("l").Br("l").BrTrue("l").BrFalse("l").
		Call(callee).CallVirt(vcallee).InternName(v, "console.newline").
		NewObj(pt).NewArr(i32arr).U16(OpNewMD, md.Index).
		Op(OpLdLen).Op(OpLdElem).Op(OpStElem).
		LdFld(pt, "x").StFld(pt, "x").LdSFld(g).StSFld(g).
		Ret().RetVal()
	m := v.AddMethod(nil, b.Build("everything", 1, 1, false))
	dis := v.Disassemble(m)
	for op := Op(0); op < opCount; op++ {
		if !strings.Contains(dis, op.Name()) {
			t.Errorf("disassembly missing %q", op.Name())
		}
	}
	// Operand rendering: resolved names appear.
	for _, want := range []string{"callee", "Point.vm", "console.newline", "Point", "int32[rank=1]"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing operand %q:\n%s", want, dis)
		}
	}
}
