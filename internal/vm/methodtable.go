package vm

import "fmt"

// TypeKind distinguishes the shapes of managed types.
type TypeKind uint8

const (
	// TKClass is a reference type with named fields.
	TKClass TypeKind = iota
	// TKArray is a single- or multi-dimensional array type. Unlike
	// Java's arrays-of-arrays, rank-n arrays are a single object with
	// a true rectangular layout, as in the CLI (paper §3).
	TKArray
)

// FieldDesc describes one instance field. Mirroring the SSCLI, the
// descriptor packs offset, kind and flags into a single bit field and
// — crucially for the paper — carries the Transportable bit directly,
// so the Motor serializer never has to consult slow reflection
// metadata (§7.5).
type FieldDesc struct {
	Name string
	// bits layout:
	//   [0:28)  byte offset of the field within instance data
	//   [28:33) kind
	//   bit 33  transportable
	bits uint64
	// DeclaredType is the statically declared class of a reference
	// field, or nil for fields declared as the root object type.
	DeclaredType *MethodTable
}

const (
	fdOffsetBits        = 28
	fdOffsetMask        = (1 << fdOffsetBits) - 1
	fdKindShift         = fdOffsetBits
	fdKindBits          = 5
	fdKindMask          = (1 << fdKindBits) - 1
	fdTransportableFlag = 1 << (fdKindShift + fdKindBits)
)

func makeFieldDesc(name string, offset uint32, kind Kind, transportable bool, declared *MethodTable) FieldDesc {
	bits := uint64(offset)&fdOffsetMask | (uint64(kind)&fdKindMask)<<fdKindShift
	if transportable {
		bits |= fdTransportableFlag
	}
	return FieldDesc{Name: name, bits: bits, DeclaredType: declared}
}

// Offset returns the field's byte offset within the instance data.
func (f *FieldDesc) Offset() uint32 { return uint32(f.bits & fdOffsetMask) }

// Kind returns the field's primitive kind (KindRef for references).
func (f *FieldDesc) Kind() Kind { return Kind((f.bits >> fdKindShift) & fdKindMask) }

// Transportable reports whether the field carries the Transportable
// attribute: reference fields so marked are propagated by the extended
// object-oriented transport operations (paper §4.2.2, Fig. 5).
func (f *FieldDesc) Transportable() bool { return f.bits&fdTransportableFlag != 0 }

// IsRef reports whether the field holds an object reference.
func (f *FieldDesc) IsRef() bool { return f.Kind() == KindRef }

// Method is a piece of executable bytecode attached to a type (or
// standalone when Owner is nil). The interpreter in interp.go executes
// Code; builder.go and textasm.go produce it.
type Method struct {
	Name  string
	Owner *MethodTable // nil for module-level (static) functions

	NArgs   int // number of arguments, including the receiver if virtual
	NLocals int
	HasRet  bool
	Virtual bool
	VSlot   int // slot in the owner's VTable when Virtual

	// RetKind describes the declared result when HasRet: a scalar
	// Kind, or KindRef with RetClass naming the declared class (nil =
	// the root object type or an untyped array). Methods built
	// directly through CodeBuilder carry KindVoid with HasRet set,
	// meaning "value of unknown type" — the verifier then accepts any
	// returned category.
	RetKind  Kind
	RetClass *MethodTable

	Code     []byte
	MaxStack int

	// Lines maps bytecode offsets to masm source lines (sorted by PC,
	// recorded by the text assembler). Empty for hand-built methods.
	Lines []LineEntry

	// Verified is set once the bytecode verifier has accepted the
	// method; TransportVerified additionally records that every value
	// this method passes to an MPI buffer parameter is provably
	// transferable, letting the engine skip the dynamic object-model
	// check (paper §4.2.1) while this method's frame is on top.
	Verified          bool
	TransportVerified bool

	// Facts holds per-instruction verifier facts (exact receiver
	// types, statically checked stores), keyed by bytecode offset.
	// Populated by bcverify on success; consumed by the quickening
	// pass. Nil for unverified methods.
	Facts map[int]InstFact

	// quick is the quickened body compiled by VM.QuickenMethod, or nil
	// when the method runs on the baseline switch dispatch.
	quick *quickBody

	// Index is the method's position in the assembly's method list,
	// the operand space of call instructions.
	Index int
}

// Quickened reports whether the method carries a quickened body.
func (m *Method) Quickened() bool { return m.quick != nil }

// LineEntry associates the instruction at PC (and all following
// instructions up to the next entry) with a 1-based source line.
type LineEntry struct {
	PC   int
	Line int
}

// LineForPC returns the source line covering the given bytecode
// offset, or 0 when the method has no line table.
func (m *Method) LineForPC(pc int) int {
	line := 0
	for _, e := range m.Lines {
		if e.PC > pc {
			break
		}
		line = e.Line
	}
	return line
}

// FullName returns "Type.Method" or just the method name for
// module-level functions.
func (m *Method) FullName() string {
	if m.Owner != nil {
		return m.Owner.Name + "." + m.Name
	}
	return m.Name
}

// MethodTable is the runtime descriptor of a managed type — the
// "gateway to commonly accessed type information" (paper §5.3). Every
// heap object's header points at one.
type MethodTable struct {
	Index int // position in the VM's type registry; stored in headers
	Name  string
	Kind  TypeKind

	Parent *MethodTable // base class; nil for roots and arrays

	// Class layout.
	InstanceSize uint32      // bytes of instance data (excludes header)
	Fields       []FieldDesc // flattened, including inherited fields
	RefOffsets   []uint32    // offsets of all reference fields (GC map)

	// Array layout.
	Elem   Kind         // element kind (KindRef for object arrays)
	ElemMT *MethodTable // element class for object arrays; nil otherwise
	Rank   int          // 1 for vectors; >1 for true multidimensional

	// Dispatch.
	Methods []*Method
	VTable  []*Method
}

// IsArray reports whether the type is an array type.
func (mt *MethodTable) IsArray() bool { return mt.Kind == TKArray }

// IsSimpleArray reports whether the type is an array of unmanaged
// scalars — the only array shape the regular MPI operations accept.
func (mt *MethodTable) IsSimpleArray() bool {
	return mt.Kind == TKArray && mt.Elem.Simple()
}

// HasRefFields reports whether instances contain object references.
// The regular MPI bindings reject such types to protect the integrity
// of the object model (paper §4.2.1).
func (mt *MethodTable) HasRefFields() bool {
	if mt.Kind == TKArray {
		return mt.Elem == KindRef
	}
	return len(mt.RefOffsets) > 0
}

// ElemSize returns the byte size of one array element.
func (mt *MethodTable) ElemSize() int {
	if mt.Kind != TKArray {
		return 0
	}
	return mt.Elem.Size()
}

// FieldByName locates a field descriptor. It returns nil when absent.
func (mt *MethodTable) FieldByName(name string) *FieldDesc {
	for i := range mt.Fields {
		if mt.Fields[i].Name == name {
			return &mt.Fields[i]
		}
	}
	return nil
}

// FieldIndex returns the position of the named field or -1.
func (mt *MethodTable) FieldIndex(name string) int {
	for i := range mt.Fields {
		if mt.Fields[i].Name == name {
			return i
		}
	}
	return -1
}

// MethodByName locates a method declared on this type (not inherited).
func (mt *MethodTable) MethodByName(name string) *Method {
	for _, m := range mt.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// IsSubclassOf walks the parent chain.
func (mt *MethodTable) IsSubclassOf(base *MethodTable) bool {
	for t := mt; t != nil; t = t.Parent {
		if t == base {
			return true
		}
	}
	return false
}

// String renders the type name for diagnostics.
func (mt *MethodTable) String() string {
	switch {
	case mt == nil:
		return "<nil type>"
	case mt.Kind == TKArray && mt.Elem == KindRef && mt.ElemMT != nil:
		return mt.ElemMT.Name + "[]"
	case mt.Kind == TKArray:
		return fmt.Sprintf("%s[rank=%d]", mt.Elem, mt.Rank)
	default:
		return mt.Name
	}
}

// TransportableRefs returns the descriptors of reference fields marked
// Transportable, in declaration order. The Motor serializer follows
// exactly these when flattening an object tree.
func (mt *MethodTable) TransportableRefs() []*FieldDesc {
	var out []*FieldDesc
	for i := range mt.Fields {
		f := &mt.Fields[i]
		if f.IsRef() && f.Transportable() {
			out = append(out, f)
		}
	}
	return out
}
