package vm

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Disassemble renders a method body as one instruction per line, for
// diagnostics and the assembler round-trip tests.
func (v *VM) Disassemble(m *Method) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s args=%d locals=%d ret=%v\n", m.FullName(), m.NArgs, m.NLocals, m.HasRet)
	code := m.Code
	pc := 0
	for pc < len(code) {
		op := Op(code[pc])
		if int(op) >= int(opCount) {
			fmt.Fprintf(&sb, "%4d: ??? (%d)\n", pc, op)
			break
		}
		operandAt := pc + 1
		next := pc + 1 + op.operandBytes()
		if next > len(code) {
			fmt.Fprintf(&sb, "%4d: %s <truncated>\n", pc, op.Name())
			break
		}
		switch opTable[op].width {
		case wNone:
			fmt.Fprintf(&sb, "%4d: %s\n", pc, op.Name())
		case wU16:
			arg := int(u16(code, operandAt))
			fmt.Fprintf(&sb, "%4d: %-10s %s\n", pc, op.Name(), v.describeU16(op, arg))
		case wI32:
			n := int32(binary.LittleEndian.Uint32(code[operandAt:]))
			switch op {
			case OpBr, OpBrTrue, OpBrFalse:
				fmt.Fprintf(&sb, "%4d: %-10s -> %d\n", pc, op.Name(), next+int(n))
			default:
				fmt.Fprintf(&sb, "%4d: %-10s %d\n", pc, op.Name(), n)
			}
		case wI64:
			bits := binary.LittleEndian.Uint64(code[operandAt:])
			if op == OpLdcR8 {
				fmt.Fprintf(&sb, "%4d: %-10s %g\n", pc, op.Name(), F64FromBits(bits))
			} else {
				fmt.Fprintf(&sb, "%4d: %-10s %d\n", pc, op.Name(), int64(bits))
			}
		}
		pc = next
	}
	return sb.String()
}

func (v *VM) describeU16(op Op, arg int) string {
	switch op {
	case OpCall, OpCallVirt:
		if m, ok := v.MethodByIndex(arg); ok {
			return m.FullName()
		}
	case OpIntern:
		if f, ok := v.InternalByIndex(arg); ok {
			return f.Name
		}
	case OpNewObj, OpNewArr:
		if mt, ok := v.TypeByIndex(arg); ok {
			return mt.String()
		}
	}
	return fmt.Sprintf("%d", arg)
}
