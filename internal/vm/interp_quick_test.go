package vm

import (
	"math"
	"testing"
	"testing/quick"
)

// Property tests: the interpreter's arithmetic must agree with Go's
// int64/float64 semantics for arbitrary operands.

func binOpMethod(v *VM, op Op) *Method {
	return v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).LdArg(1).Op(op).RetVal().
		Build("q_"+op.Name(), 2, 0, true))
}

func TestQuickIntArithmetic(t *testing.T) {
	v := testVM()
	cases := []struct {
		op Op
		f  func(a, b int64) int64
	}{
		{OpAdd, func(a, b int64) int64 { return a + b }},
		{OpSub, func(a, b int64) int64 { return a - b }},
		{OpMul, func(a, b int64) int64 { return a * b }},
		{OpAnd, func(a, b int64) int64 { return a & b }},
		{OpOr, func(a, b int64) int64 { return a | b }},
		{OpXor, func(a, b int64) int64 { return a ^ b }},
		{OpShl, func(a, b int64) int64 { return a << (uint64(b) & 63) }},
		{OpShr, func(a, b int64) int64 { return a >> (uint64(b) & 63) }},
	}
	v.WithThread("t", func(th *Thread) {
		for _, tc := range cases {
			m := binOpMethod(v, tc.op)
			prop := func(a, b int64) bool {
				got, err := th.Call(m, IntValue(a), IntValue(b))
				return err == nil && got.Int() == tc.f(a, b)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
				t.Errorf("%s: %v", tc.op.Name(), err)
			}
		}
	})
}

func TestQuickDivRem(t *testing.T) {
	v := testVM()
	v.WithThread("t", func(th *Thread) {
		div := binOpMethod(v, OpDiv)
		rem := binOpMethod(v, OpRem)
		prop := func(a, b int64) bool {
			if b == 0 {
				return true // trap case, covered elsewhere
			}
			if a == math.MinInt64 && b == -1 {
				// Go panics on this overflow; the interpreter inherits
				// Go semantics, so skip the undefined case.
				return true
			}
			d, err := th.Call(div, IntValue(a), IntValue(b))
			if err != nil || d.Int() != a/b {
				return false
			}
			r, err := th.Call(rem, IntValue(a), IntValue(b))
			return err == nil && r.Int() == a%b
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Error(err)
		}
	})
}

func TestQuickFloatArithmetic(t *testing.T) {
	v := testVM()
	cases := []struct {
		op Op
		f  func(a, b float64) float64
	}{
		{OpAddF, func(a, b float64) float64 { return a + b }},
		{OpSubF, func(a, b float64) float64 { return a - b }},
		{OpMulF, func(a, b float64) float64 { return a * b }},
		{OpDivF, func(a, b float64) float64 { return a / b }},
	}
	v.WithThread("t", func(th *Thread) {
		for _, tc := range cases {
			m := binOpMethod(v, tc.op)
			prop := func(a, b float64) bool {
				got, err := th.Call(m, FloatValue(a), FloatValue(b))
				if err != nil {
					return false
				}
				want := tc.f(a, b)
				// Bit-level equality, so NaN == NaN here.
				return got.Bits == BitsFromF64(want)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
				t.Errorf("%s: %v", tc.op.Name(), err)
			}
		}
	})
}

func TestQuickComparisons(t *testing.T) {
	v := testVM()
	v.WithThread("t", func(th *Thread) {
		lt := binOpMethod(v, OpClt)
		prop := func(a, b int64) bool {
			got, err := th.Call(lt, IntValue(a), IntValue(b))
			return err == nil && got.Bool() == (a < b)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Error(err)
		}
		ltf := binOpMethod(v, OpCltF)
		fprop := func(a, b float64) bool {
			got, err := th.Call(ltf, FloatValue(a), FloatValue(b))
			return err == nil && got.Bool() == (a < b)
		}
		if err := quick.Check(fprop, &quick.Config{MaxCount: 200}); err != nil {
			t.Error(err)
		}
	})
}

func TestQuickConversionRoundtrip(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).Op(OpConvI2F).Op(OpConvF2I).RetVal().
		Build("conv", 1, 0, true))
	v.WithThread("t", func(th *Thread) {
		prop := func(a int32) bool {
			// int32 -> float64 -> int64 is exact.
			got, err := th.Call(m, IntValue(int64(a)))
			return err == nil && got.Int() == int64(a)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Error(err)
		}
	})
}

// TestQuickFieldStoreLoad round-trips random bits through every
// scalar field kind.
func TestQuickFieldStoreLoad(t *testing.T) {
	v := testVM()
	kinds := []Kind{KindBool, KindInt8, KindUint8, KindInt16, KindUint16, KindChar,
		KindInt32, KindUint32, KindInt64, KindUint64, KindFloat32, KindFloat64}
	specs := make([]FieldSpec, len(kinds))
	for i, k := range kinds {
		specs[i] = FieldSpec{Name: "f" + k.String(), Kind: k}
	}
	mt := v.MustNewClass("AllKinds", nil, specs)
	obj, err := v.Heap.AllocClass(mt)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(bits uint64, which uint8) bool {
		k := kinds[int(which)%len(kinds)]
		f := mt.FieldByName("f" + k.String())
		v.Heap.SetScalar(obj, f, bits)
		got := v.Heap.GetScalar(obj, f)
		// The store truncates to the field width; a second round trip
		// must be a fixed point.
		v.Heap.SetScalar(obj, f, got)
		return v.Heap.GetScalar(obj, f) == got
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
