package vm

import (
	"fmt"
	"strings"
)

// Type-name syntax, CLI-style:
//
//	int32        primitive kind (not an object type by itself)
//	Cell         class
//	int32[]      vector of int32
//	int32[,]     true rank-2 rectangular array (one object)
//	Cell[][]     jagged: vector of vectors of Cell references
//	int32[,][]   vector of rank-2 int32 arrays
//
// ArrayType generates these names and ResolveTypeName parses them, so
// serialized type tables and masm programs agree on array identity.

// arrayTypeName renders the canonical name for an array shape.
func arrayTypeName(elem Kind, elemMT *MethodTable, rank int) string {
	base := elem.String()
	if elem == KindRef && elemMT != nil {
		base = elemMT.Name
	}
	if rank <= 1 {
		return base + "[]"
	}
	return base + "[" + strings.Repeat(",", rank-1) + "]"
}

// ResolveTypeName resolves a type-name string against the registry,
// materializing array types on demand. Bare primitive kind names are
// rejected (they are not object types); use KindByName for those.
func (v *VM) ResolveTypeName(name string) (*MethodTable, error) {
	open := strings.IndexByte(name, '[')
	if open < 0 {
		if mt, ok := v.TypeByName(name); ok {
			return mt, nil
		}
		return nil, fmt.Errorf("vm: unknown type %q", name)
	}
	base := name[:open]
	rest := name[open:]

	// Parse the bracket groups.
	var ranks []int
	for len(rest) > 0 {
		if rest[0] != '[' {
			return nil, fmt.Errorf("vm: malformed type name %q", name)
		}
		close := strings.IndexByte(rest, ']')
		if close < 0 {
			return nil, fmt.Errorf("vm: malformed type name %q", name)
		}
		inner := rest[1:close]
		if strings.Trim(inner, ",") != "" {
			return nil, fmt.Errorf("vm: malformed array suffix in %q", name)
		}
		ranks = append(ranks, len(inner)+1)
		rest = rest[close+1:]
	}

	// Innermost array first: base kind or class.
	var cur *MethodTable
	if k, ok := KindByName(base); ok && k != KindVoid {
		cur = v.ArrayType(k, nil, ranks[0])
	} else if base == "object" {
		cur = v.ArrayType(KindRef, nil, ranks[0])
	} else if mt, found := v.TypeByName(base); found {
		cur = v.ArrayType(KindRef, mt, ranks[0])
	} else {
		return nil, fmt.Errorf("vm: unknown type %q in %q", base, name)
	}
	for _, r := range ranks[1:] {
		cur = v.ArrayType(KindRef, cur, r)
	}
	return cur, nil
}
