package vm

import (
	"testing"
)

func testVM() *VM {
	return New(Config{Name: "test", Heap: HeapConfig{YoungSize: 64 << 10, InitialElder: 256 << 10, ArenaMax: 32 << 20}})
}

func pointClass(v *VM) *MethodTable {
	return v.MustNewClass("Point", nil, []FieldSpec{
		{Name: "x", Kind: KindInt32},
		{Name: "y", Kind: KindInt32},
		{Name: "tag", Kind: KindInt64},
	})
}

func nodeClass(v *VM) *MethodTable {
	// A linked-list node like the paper's LinkedArray (Fig. 5).
	mt, err := v.NewClass("Node", nil, []FieldSpec{
		{Name: "data", Kind: KindRef, Transportable: true},
		{Name: "next", Kind: KindRef, Transportable: true},
		{Name: "shadow", Kind: KindRef}, // not transportable, like next2
		{Name: "id", Kind: KindInt32},
	})
	if err != nil {
		panic(err)
	}
	return mt
}

func TestAllocClassAndFieldAccess(t *testing.T) {
	v := testVM()
	pt := pointClass(v)
	ref, err := v.Heap.AllocClass(pt)
	if err != nil {
		t.Fatal(err)
	}
	if ref == NullRef {
		t.Fatal("null ref from alloc")
	}
	fx, fy := pt.FieldByName("x"), pt.FieldByName("y")
	if fx == nil || fy == nil {
		t.Fatal("missing fields")
	}
	minus7 := int32(-7)
	v.Heap.SetScalar(ref, fx, uint64(uint32(minus7)))
	v.Heap.SetScalar(ref, fy, 42)
	if got := int32(uint32(v.Heap.GetScalar(ref, fx))); got != -7 {
		t.Errorf("x = %d, want -7", got)
	}
	if got := v.Heap.GetScalar(ref, fy); got != 42 {
		t.Errorf("y = %d, want 42", got)
	}
	if v.Heap.MT(ref) != pt {
		t.Error("MT mismatch")
	}
	if !v.Heap.Valid(ref) {
		t.Error("Valid() false for live object")
	}
}

func TestFieldLayoutAlignment(t *testing.T) {
	v := testVM()
	mt := v.MustNewClass("Mix", nil, []FieldSpec{
		{Name: "a", Kind: KindUint8},
		{Name: "b", Kind: KindInt64},
		{Name: "c", Kind: KindInt16},
		{Name: "d", Kind: KindRef},
	})
	fa, fb, fc, fd := mt.FieldByName("a"), mt.FieldByName("b"), mt.FieldByName("c"), mt.FieldByName("d")
	if fa.Offset() != 0 {
		t.Errorf("a offset %d", fa.Offset())
	}
	if fb.Offset() != 8 {
		t.Errorf("b offset %d, want 8 (aligned)", fb.Offset())
	}
	if fc.Offset() != 16 {
		t.Errorf("c offset %d, want 16", fc.Offset())
	}
	if fd.Offset() != 20 {
		t.Errorf("d offset %d, want 20", fd.Offset())
	}
	if mt.InstanceSize%8 != 0 {
		t.Errorf("instance size %d not 8-aligned", mt.InstanceSize)
	}
	if len(mt.RefOffsets) != 1 || mt.RefOffsets[0] != 20 {
		t.Errorf("ref offsets %v", mt.RefOffsets)
	}
}

func TestInheritedFieldLayout(t *testing.T) {
	v := testVM()
	base := v.MustNewClass("Base", nil, []FieldSpec{{Name: "a", Kind: KindInt32}})
	child := v.MustNewClass("Child", base, []FieldSpec{{Name: "b", Kind: KindInt32}})
	if child.FieldByName("a") == nil {
		t.Fatal("inherited field missing")
	}
	if child.FieldByName("a").Offset() != base.FieldByName("a").Offset() {
		t.Error("inherited field moved")
	}
	if child.FieldIndex("a") != 0 || child.FieldIndex("b") != 1 {
		t.Error("field order wrong")
	}
	if !child.IsSubclassOf(base) || !child.IsSubclassOf(v.ObjectMT) {
		t.Error("subclass chain broken")
	}
	if base.IsSubclassOf(child) {
		t.Error("inverted subclass relation")
	}
}

func TestArrayAllocAndAccess(t *testing.T) {
	v := testVM()
	at := v.ArrayType(KindInt32, nil, 1)
	ref, err := v.Heap.AllocArray(at, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v.Heap.Length(ref) != 10 {
		t.Fatalf("length %d", v.Heap.Length(ref))
	}
	for i := 0; i < 10; i++ {
		v.Heap.SetElem(ref, i, uint64(uint32(int32(i*i))))
	}
	for i := 0; i < 10; i++ {
		if got := int32(uint32(v.Heap.GetElem(ref, i))); got != int32(i*i) {
			t.Errorf("elem %d = %d", i, got)
		}
	}
	if got := v.Heap.Int32Slice(ref); len(got) != 10 || got[3] != 9 {
		t.Errorf("Int32Slice = %v", got)
	}
}

func TestArrayBounds(t *testing.T) {
	v := testVM()
	ref, _ := v.Heap.NewInt32Array([]int32{1, 2, 3})
	for _, idx := range []int{-1, 3, 1000} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("no panic for index %d", idx)
				} else if _, ok := r.(*BoundsError); !ok {
					t.Errorf("wrong panic type %T", r)
				}
			}()
			v.Heap.GetElem(ref, idx)
		}()
	}
}

func TestMultiDimArray(t *testing.T) {
	v := testVM()
	at := v.ArrayType(KindFloat64, nil, 2)
	ref, err := v.Heap.AllocMultiDim(at, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if v.Heap.Length(ref) != 12 {
		t.Fatalf("total length %d", v.Heap.Length(ref))
	}
	dims := v.Heap.Dims(ref)
	if len(dims) != 2 || dims[0] != 3 || dims[1] != 4 {
		t.Fatalf("dims %v", dims)
	}
	// Row-major addressing.
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			v.Heap.SetElem(ref, r*4+c, BitsFromF64(float64(r*10+c)))
		}
	}
	if got := F64FromBits(v.Heap.GetElem(ref, 2*4+3)); got != 23 {
		t.Errorf("elem[2,3] = %g", got)
	}
	if v.Heap.DataSize(ref) != 12*8 {
		t.Errorf("data size %d", v.Heap.DataSize(ref))
	}
}

func TestDataRangeIsInstanceData(t *testing.T) {
	v := testVM()
	ref, _ := v.Heap.NewUint8Array([]byte{9, 8, 7, 6})
	s, e := v.Heap.DataRange(ref)
	if e-s != 4 {
		t.Fatalf("range size %d", e-s)
	}
	b := v.Heap.Bytes(s, e)
	if b[0] != 9 || b[3] != 6 {
		t.Errorf("bytes %v", b)
	}
	// Writing through the range must be visible through typed access
	// (this is the zero-copy transport path).
	b[1] = 200
	if got := v.Heap.GetElem(ref, 1); got != 200 {
		t.Errorf("typed read %d after raw write", got)
	}
}

func TestBigObjectGoesToElder(t *testing.T) {
	v := testVM()
	at := v.ArrayType(KindUint8, nil, 1)
	// Bigger than half the nursery (64 KiB nursery in testVM).
	ref, err := v.Heap.AllocArray(at, 48<<10)
	if err != nil {
		t.Fatal(err)
	}
	if v.Heap.IsYoung(ref) {
		t.Error("large object allocated in the nursery")
	}
}

func TestAllocZeroed(t *testing.T) {
	v := testVM()
	at := v.ArrayType(KindUint8, nil, 1)
	ref, _ := v.Heap.AllocArray(at, 128)
	for i, b := range v.Heap.DataBytes(ref) {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestArenaOOM(t *testing.T) {
	v := New(Config{Heap: HeapConfig{YoungSize: 16 << 10, InitialElder: 32 << 10, ArenaMax: 128 << 10}})
	at := v.ArrayType(KindUint8, nil, 1)
	var refs []Ref
	hold := RootFunc(func(visit func(Ref) Ref) {
		for i := range refs {
			refs[i] = visit(refs[i])
		}
	})
	v.AddRootProvider(hold)
	var sawOOM bool
	for i := 0; i < 1000; i++ {
		ref, err := v.Heap.AllocArray(at, 4<<10)
		if err != nil {
			sawOOM = true
			break
		}
		refs = append(refs, ref)
	}
	if !sawOOM {
		t.Fatal("no OOM on a bounded arena with all objects live")
	}
}

func TestHandleTable(t *testing.T) {
	v := testVM()
	ref, _ := v.Heap.NewInt32Array([]int32{5})
	h := v.Handles.Alloc(ref)
	if v.Handles.Get(h) != ref {
		t.Fatal("handle get mismatch")
	}
	if v.Handles.Live() != 1 {
		t.Errorf("live = %d", v.Handles.Live())
	}
	v.Handles.Free(h)
	if v.Handles.Get(h) != NullRef {
		t.Error("freed handle still resolves")
	}
	h2 := v.Handles.Alloc(ref)
	if h2 != h {
		t.Error("slot not reused")
	}
	v.Handles.Free(h2)
}

func TestDuplicateTypeAndFieldRejected(t *testing.T) {
	v := testVM()
	pointClass(v)
	if _, err := v.NewClass("Point", nil, nil); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := v.NewClass("Dup", nil, []FieldSpec{
		{Name: "f", Kind: KindInt32}, {Name: "f", Kind: KindInt64},
	}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := v.NewClass("Voidy", nil, []FieldSpec{{Name: "v", Kind: KindVoid}}); err == nil {
		t.Error("void field accepted")
	}
}

func TestArrayTypeCanonicalization(t *testing.T) {
	v := testVM()
	a := v.ArrayType(KindInt32, nil, 1)
	b := v.ArrayType(KindInt32, nil, 1)
	if a != b {
		t.Error("array types not canonicalized")
	}
	c := v.ArrayType(KindInt32, nil, 2)
	if a == c {
		t.Error("rank ignored")
	}
	if !a.IsSimpleArray() {
		t.Error("int32[] not simple")
	}
	n := nodeClass(v)
	oa := v.ArrayType(KindRef, n, 1)
	if oa.IsSimpleArray() {
		t.Error("Node[] reported simple")
	}
	if !oa.HasRefFields() {
		t.Error("Node[] has no ref fields?")
	}
}
