package vm

import "testing"

// Tests for registry rollback: a rejected module must leave no types,
// globals or callable methods behind, and its names must be free for a
// corrected retry (Rank.Load relies on this when verification fails
// after assembly has already registered the module).

const rollbackBadModule = `
.class Pair
  .field int64 a
  .field int64 b
.end
.global counter
.method helper (0) void
  ret
.end
.method main (0) void
  nosuchop
  ret
.end`

const rollbackGoodModule = `
.class Pair
  .field int64 a
  .field int64 b
.end
.global counter
.method helper (0) void
  ret
.end
.method main (0) int32
  ldc.i4 41
  ldc.i4 1
  add
  ret.val
.end`

func TestAssembleErrorRollsBackRegistries(t *testing.T) {
	v := testVM()
	nt, nm, ng := v.NumTypes(), v.NumMethods(), v.NumGlobals()

	// The bad module fails in pass 2 (unknown mnemonic), after its
	// class, global and method shells were registered.
	if _, err := v.AssembleModule(rollbackBadModule); err == nil {
		t.Fatal("assembled a module with an unknown mnemonic")
	}
	if got := v.NumTypes(); got != nt {
		t.Errorf("types after rejected assembly: %d, want %d", got, nt)
	}
	if got := v.NumMethods(); got != nm {
		t.Errorf("methods after rejected assembly: %d, want %d", got, nm)
	}
	if got := v.NumGlobals(); got != ng {
		t.Errorf("globals after rejected assembly: %d, want %d", got, ng)
	}
	if _, ok := v.TypeByName("Pair"); ok {
		t.Error("rejected module's class Pair still registered")
	}
	if _, ok := v.GlobalIndex("counter"); ok {
		t.Error("rejected module's global counter still registered")
	}
	if _, ok := v.MethodByName("main"); ok {
		t.Error("rejected module's main still registered")
	}

	// The same names must now assemble cleanly, and the module must run.
	mod, err := v.AssembleModule(rollbackGoodModule)
	if err != nil {
		t.Fatalf("corrected module failed to assemble: %v", err)
	}
	v.WithThread("t", func(th *Thread) {
		res, err := th.Call(mod.Main)
		if err != nil {
			t.Fatalf("corrected main: %v", err)
		}
		if res.Int() != 42 {
			t.Fatalf("corrected main returned %d, want 42", res.Int())
		}
	})
}

// TestRollbackRestoresVTableOverride covers detaching a post-mark
// method from a pre-existing (surviving) owner type: the vtable slot
// must fall back to the inherited implementation.
func TestRollbackRestoresVTableOverride(t *testing.T) {
	v := testVM()
	base := v.MustNewClass("RbBase", nil, nil)
	bm := v.AddMethod(base, &Method{Name: "f", Virtual: true,
		NArgs: 1, Code: []byte{byte(OpRet)}})
	sub := v.MustNewClass("RbSub", base, nil)

	mark := v.Mark()
	om := v.AddMethod(sub, &Method{Name: "f", Virtual: true,
		NArgs: 1, Code: []byte{byte(OpRet)}})
	if got := lookupVSlot(sub, bm.VSlot); got != om {
		t.Fatal("override not installed")
	}
	v.RollbackRegistry(mark)

	if got := v.NumMethods(); got != bm.Index+1 {
		t.Errorf("methods after rollback: %d, want %d", got, bm.Index+1)
	}
	if got := lookupVSlot(sub, bm.VSlot); got != bm {
		t.Errorf("sub vtable slot %d resolves to %v, want the inherited base method", bm.VSlot, got)
	}
	if len(sub.Methods) != 0 {
		t.Errorf("sub.Methods = %v, want empty after rollback", sub.Methods)
	}
}
