package vm

// Value is one interpreter stack slot or local: 64 raw bits plus a
// tag telling the collector whether the bits are a managed reference.
// The tag is what lets the GC enumerate stack roots precisely.
type Value struct {
	Bits  uint64
	IsRef bool
}

// RefValue wraps a managed reference.
func RefValue(r Ref) Value { return Value{Bits: uint64(r), IsRef: true} }

// IntValue wraps a signed integer.
func IntValue(i int64) Value { return Value{Bits: uint64(i)} }

// FloatValue wraps a float64.
func FloatValue(f float64) Value { return Value{Bits: BitsFromF64(f)} }

// BoolValue wraps a bool as 0/1.
func BoolValue(b bool) Value {
	if b {
		return Value{Bits: 1}
	}
	return Value{}
}

// Ref interprets the value as a managed reference.
func (v Value) Ref() Ref { return Ref(v.Bits) }

// Int interprets the value as a signed integer.
func (v Value) Int() int64 { return int64(v.Bits) }

// Float interprets the value as a float64.
func (v Value) Float() float64 { return F64FromBits(v.Bits) }

// Bool interprets the value as a truth value.
func (v Value) Bool() bool { return v.Bits != 0 }
