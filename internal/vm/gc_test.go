package vm

import (
	"math/rand"
	"testing"
)

// gcVM builds a VM with a tiny nursery so collections are frequent.
func gcVM() *VM {
	return New(Config{Name: "gc", Heap: HeapConfig{YoungSize: 16 << 10, InitialElder: 128 << 10, ArenaMax: 64 << 20}})
}

func TestScavengeForwardsRoots(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		ref, _ := v.Heap.NewInt32Array([]int32{1, 2, 3, 4})
		if !v.Heap.IsYoung(ref) {
			t.Fatal("expected nursery allocation")
		}
		pop := th.PushFrame(&ref)
		defer pop()
		th.CollectYoung()
		if v.Heap.IsYoung(ref) {
			t.Error("object not promoted")
		}
		if got := v.Heap.Int32Slice(ref); got[0] != 1 || got[3] != 4 {
			t.Errorf("content lost after promotion: %v", got)
		}
	})
}

func TestScavengeCollectsGarbage(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		for i := 0; i < 100; i++ {
			if _, err := v.Heap.NewInt32Array(make([]int32, 16)); err != nil {
				t.Fatal(err)
			}
		}
		before := v.Heap.Stats.BytesPromoted
		th.CollectYoung()
		if v.Heap.Stats.BytesPromoted != before {
			t.Errorf("unreachable objects promoted: %d bytes", v.Heap.Stats.BytesPromoted-before)
		}
		_, used, _ := v.Heap.MemUse()
		if used != 0 {
			t.Errorf("nursery not reset: %d bytes used", used)
		}
	})
}

func TestScavengeForwardsInteriorGraph(t *testing.T) {
	v := gcVM()
	node := nodeClass(v)
	fData, fNext := node.FieldByName("data"), node.FieldByName("next")
	v.WithThread("t", func(th *Thread) {
		// head -> mid -> tail, each with a data array.
		var head Ref
		pop := th.PushFrame(&head)
		defer pop()

		build := func(id int32) Ref {
			n, _ := v.Heap.AllocClass(node)
			protect := th.PushFrame(&n)
			arr, _ := v.Heap.NewInt32Array([]int32{id, id * 2})
			v.Heap.SetRef(n, fData, arr)
			protect()
			return n
		}
		head = build(1)
		mid := build(2)
		v.Heap.SetRef(head, fNext, mid)
		tail := build(3)
		v.Heap.SetRef(v.Heap.GetRef(head, fNext), fNext, tail)

		th.CollectYoung()

		m := v.Heap.GetRef(head, fNext)
		ta := v.Heap.GetRef(m, fNext)
		if m == NullRef || ta == NullRef {
			t.Fatal("graph broken after scavenge")
		}
		if got := v.Heap.Int32Slice(v.Heap.GetRef(ta, fData)); got[0] != 3 || got[1] != 6 {
			t.Errorf("tail data %v", got)
		}
		if v.Heap.GetRef(ta, fNext) != NullRef {
			t.Error("tail.next should be null")
		}
	})
}

func TestWriteBarrierRemembersElderToYoung(t *testing.T) {
	v := gcVM()
	node := nodeClass(v)
	fNext := node.FieldByName("next")
	v.WithThread("t", func(th *Thread) {
		elder, _ := v.Heap.AllocClass(node)
		pop := th.PushFrame(&elder)
		defer pop()
		th.CollectYoung() // promote elder
		if v.Heap.IsYoung(elder) {
			t.Fatal("not promoted")
		}
		// Young object referenced ONLY from the elder object.
		young, _ := v.Heap.AllocClass(node)
		v.Heap.SetRef(elder, fNext, young)
		young = NullRef // drop the stack reference
		_ = young
		th.CollectYoung()
		got := v.Heap.GetRef(elder, fNext)
		if got == NullRef {
			t.Fatal("young object lost: write barrier failed")
		}
		if v.Heap.IsYoung(got) {
			t.Error("referent not promoted")
		}
		if v.Heap.MT(got) != node {
			t.Error("referent header corrupt")
		}
	})
}

func TestExplicitPinPreventsMovement(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		ref, _ := v.Heap.NewInt32Array([]int32{7, 7, 7})
		if !v.Heap.IsYoung(ref) {
			t.Fatal("want nursery object")
		}
		v.Heap.Pin(ref)
		before := ref
		pop := th.PushFrame(&ref)
		th.CollectYoung()
		pop()
		if ref != before {
			t.Fatalf("pinned object moved: %#x -> %#x", before, ref)
		}
		if got := v.Heap.Int32Slice(ref); got[0] != 7 {
			t.Errorf("content %v", got)
		}
		// The modern collector (default) segregates the pinned survivor
		// into a dedicated pinned block instead of donating the whole
		// younger block.
		if v.Heap.Stats.PinnedSegregated == 0 {
			t.Error("pinned survivor was not segregated")
		}
		if v.Heap.Stats.BlocksDonated != 0 {
			t.Error("sparse pinned survivor donated the whole block")
		}
		// After segregation the object's address is elder space.
		if v.Heap.IsYoung(ref) {
			t.Error("segregated object still counted young")
		}
		v.Heap.Unpin(ref)
	})
}

func TestExplicitPinDonatesBlockLegacy(t *testing.T) {
	// gcworkers=1 is the exact-legacy collector: one pinned survivor
	// donates the whole younger block (§5.2).
	v := New(Config{Heap: HeapConfig{YoungSize: 16 << 10, InitialElder: 128 << 10, ArenaMax: 64 << 20, GCWorkers: 1}})
	v.WithThread("t", func(th *Thread) {
		ref, _ := v.Heap.NewInt32Array([]int32{7, 7, 7})
		v.Heap.Pin(ref)
		before := ref
		pop := th.PushFrame(&ref)
		th.CollectYoung()
		pop()
		if ref != before {
			t.Fatalf("pinned object moved: %#x -> %#x", before, ref)
		}
		if v.Heap.Stats.BlocksDonated == 0 {
			t.Error("young block with pinned survivor was not donated")
		}
		if v.Heap.Stats.PinnedSegregated != 0 {
			t.Error("legacy collector segregated")
		}
		if v.Heap.IsYoung(ref) {
			t.Error("donated object still counted young")
		}
		// Donation accounting: live + dead bytes cover the walked block.
		s := v.Heap.Stats.Snapshot()
		if s.DonatedLiveBytes == 0 {
			t.Error("donated pinned survivor not accounted live")
		}
		if s.DonatedDeadBytes == 0 {
			t.Error("donated dead gaps not accounted")
		}
		v.Heap.Unpin(ref)
	})
}

func TestPinIsRootEvenWithoutManagedReference(t *testing.T) {
	// An object being written by a transport must survive even if the
	// managed program dropped all references to it.
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		ref, _ := v.Heap.NewInt32Array([]int32{42})
		v.Heap.Pin(ref)
		th.CollectYoung()
		if !v.Heap.Valid(ref) {
			t.Fatal("pinned object freed")
		}
		if got := v.Heap.Int32Slice(ref); got[0] != 42 {
			t.Errorf("content %v", got)
		}
		v.Heap.Unpin(ref)
	})
}

func TestConditionalPinHeldThenDropped(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		ref, _ := v.Heap.NewInt32Array([]int32{9})
		inFlight := true
		v.Heap.AddCondPin(ref, func() bool { return inFlight })
		before := ref

		// First collection: the operation is in flight, the request
		// pins the object in place.
		th.CollectYoung()
		if !v.Heap.Valid(before) || v.Heap.Int32Slice(before)[0] != 9 {
			t.Fatal("object moved or freed while conditionally pinned")
		}
		if v.Heap.CondPinCount() != 1 {
			t.Fatalf("request dropped early: %d", v.Heap.CondPinCount())
		}
		if v.Heap.Stats.CondPinsHeld != 1 {
			t.Errorf("CondPinsHeld = %d", v.Heap.Stats.CondPinsHeld)
		}

		// Operation completes: the next mark phase discards the
		// request (paper §7.4) and the unreferenced object dies.
		inFlight = false
		th.CollectFull()
		if v.Heap.CondPinCount() != 0 {
			t.Errorf("request not discarded: %d", v.Heap.CondPinCount())
		}
		if v.Heap.Stats.CondPinsDropped != 1 {
			t.Errorf("CondPinsDropped = %d", v.Heap.Stats.CondPinsDropped)
		}
	})
}

func TestFullGCSweepsElderGarbage(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		var keep Ref
		pop := th.PushFrame(&keep)
		defer pop()
		keep, _ = v.Heap.NewInt32Array([]int32{1})
		// Promote a batch, then drop it.
		var junk Ref
		popJunk := th.PushFrame(&junk)
		junk, _ = v.Heap.NewInt32Array(make([]int32, 512))
		th.CollectYoung() // promotes keep and junk
		popJunk()
		junk = NullRef
		_ = junk
		usedBefore := v.Heap.elderUsed
		th.CollectFull()
		if v.Heap.elderUsed >= usedBefore {
			t.Errorf("elder space not reclaimed: %d -> %d", usedBefore, v.Heap.elderUsed)
		}
		if !v.Heap.Valid(keep) || v.Heap.Int32Slice(keep)[0] != 1 {
			t.Error("live object swept")
		}
	})
}

func TestElderSpaceReuseAfterSweep(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		// Fill elder with garbage, sweep, then confirm new allocations
		// fit without growing the arena.
		for i := 0; i < 20; i++ {
			var r Ref
			pop := th.PushFrame(&r)
			r, _ = v.Heap.NewInt32Array(make([]int32, 256))
			th.CollectYoung()
			pop()
		}
		th.CollectFull()
		arenaBefore, _, _ := v.Heap.MemUse()
		for i := 0; i < 10; i++ {
			var r Ref
			pop := th.PushFrame(&r)
			r, _ = v.Heap.NewInt32Array(make([]int32, 256))
			th.CollectYoung()
			pop()
			th.CollectFull()
		}
		arenaAfter, _, _ := v.Heap.MemUse()
		if arenaAfter > arenaBefore {
			t.Errorf("arena grew %d -> %d despite reusable free space", arenaBefore, arenaAfter)
		}
	})
}

func TestHandleUpdatedByGC(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		ref, _ := v.Heap.NewInt32Array([]int32{11, 22})
		h := v.Handles.Alloc(ref)
		th.CollectYoung()
		moved := v.Handles.Get(h)
		if moved == ref {
			t.Error("young object did not move (test ineffective)")
		}
		if got := v.Heap.Int32Slice(moved); got[1] != 22 {
			t.Errorf("content %v", got)
		}
		v.Handles.Free(h)
	})
}

func TestGlobalsAreRoots(t *testing.T) {
	v := gcVM()
	gi := v.AddGlobal("g")
	v.WithThread("t", func(th *Thread) {
		ref, _ := v.Heap.NewInt32Array([]int32{5})
		v.SetGlobal(gi, RefValue(ref))
		th.CollectYoung()
		got := v.GetGlobal(gi)
		if !got.IsRef || got.Ref() == NullRef {
			t.Fatal("global lost")
		}
		if v.Heap.Int32Slice(got.Ref())[0] != 5 {
			t.Error("global content lost")
		}
	})
}

func TestGCHookRunsBeforeMark(t *testing.T) {
	v := gcVM()
	ran := 0
	v.AddGCHook(func() { ran++ })
	v.WithThread("t", func(th *Thread) {
		th.CollectYoung()
		th.CollectFull()
	})
	if ran != 2 {
		t.Errorf("hook ran %d times, want 2", ran)
	}
}

func TestObjectArrayElementsTraced(t *testing.T) {
	v := gcVM()
	node := nodeClass(v)
	arrT := v.ArrayType(KindRef, node, 1)
	fID := node.FieldByName("id")
	v.WithThread("t", func(th *Thread) {
		var arr Ref
		pop := th.PushFrame(&arr)
		defer pop()
		arr, _ = v.Heap.AllocArray(arrT, 8)
		for i := 0; i < 8; i++ {
			n, _ := v.Heap.AllocClass(node)
			v.Heap.SetScalar(n, fID, uint64(uint32(int32(i+100))))
			v.Heap.SetElemRef(arr, i, n)
		}
		th.CollectYoung()
		for i := 0; i < 8; i++ {
			n := v.Heap.GetElemRef(arr, i)
			if n == NullRef {
				t.Fatalf("element %d lost", i)
			}
			if got := int32(uint32(v.Heap.GetScalar(n, fID))); got != int32(i+100) {
				t.Errorf("element %d id = %d", i, got)
			}
		}
	})
}

// TestGCStressRandomGraph builds a random object graph, mutates it
// across many collections, and verifies reachability and content are
// preserved — the core GC invariant.
func TestGCStressRandomGraph(t *testing.T) {
	v := gcVM()
	node := nodeClass(v)
	fData, fNext, fID := node.FieldByName("data"), node.FieldByName("next"), node.FieldByName("id")
	rng := rand.New(rand.NewSource(42))

	v.WithThread("t", func(th *Thread) {
		const n = 50
		roots := make([]Ref, n)
		ids := make([]int32, n)
		v.AddRootProvider(RootFunc(func(visit func(Ref) Ref) {
			for i := range roots {
				if roots[i] != NullRef {
					roots[i] = visit(roots[i])
				}
			}
		}))
		for round := 0; round < 40; round++ {
			// Mutate: allocate new nodes, rewire, drop some roots.
			for k := 0; k < 10; k++ {
				i := rng.Intn(n)
				nd, err := v.Heap.AllocClass(node)
				if err != nil {
					t.Fatal(err)
				}
				// nd must be protected across the array allocation
				// below — the exact discipline FCalls follow with
				// protected pointer frames (paper §5.1).
				pop := th.PushFrame(&nd)
				id := rng.Int31()
				v.Heap.SetScalar(nd, fID, uint64(uint32(id)))
				// Random data array.
				if rng.Intn(2) == 0 {
					arr, err := v.Heap.NewInt32Array([]int32{id, id ^ 7})
					if err != nil {
						t.Fatal(err)
					}
					v.Heap.SetRef(nd, fData, arr)
				}
				// Random linkage to another root.
				j := rng.Intn(n)
				if roots[j] != NullRef {
					v.Heap.SetRef(nd, fNext, roots[j])
				}
				pop()
				roots[i], ids[i] = nd, id
			}
			if round%4 == 3 {
				th.CollectFull()
			} else {
				th.CollectYoung()
			}
			// Verify all roots.
			for i, r := range roots {
				if r == NullRef {
					continue
				}
				if got := int32(uint32(v.Heap.GetScalar(r, fID))); got != ids[i] {
					t.Fatalf("round %d: root %d id %d, want %d", round, i, got, ids[i])
				}
				if d := v.Heap.GetRef(r, fData); d != NullRef {
					s := v.Heap.Int32Slice(d)
					if s[0] != ids[i] || s[1] != ids[i]^7 {
						t.Fatalf("round %d: root %d data %v", round, i, s)
					}
				}
			}
		}
	})
}

func TestPinLinearListMode(t *testing.T) {
	v := New(Config{Heap: HeapConfig{YoungSize: 16 << 10, InitialElder: 128 << 10, ArenaMax: 16 << 20, PinMode: PinLinearList}})
	v.WithThread("t", func(th *Thread) {
		a, _ := v.Heap.NewInt32Array([]int32{1})
		b, _ := v.Heap.NewInt32Array([]int32{2})
		v.Heap.Pin(a)
		v.Heap.Pin(a) // nested
		v.Heap.Pin(b)
		if !v.Heap.Pinned(a) || !v.Heap.Pinned(b) {
			t.Fatal("pin not recorded")
		}
		v.Heap.Unpin(a)
		if !v.Heap.Pinned(a) {
			t.Error("nested pin released early")
		}
		v.Heap.Unpin(a)
		if v.Heap.Pinned(a) {
			t.Error("pin not released")
		}
		th.CollectYoung()
		if !v.Heap.Valid(b) || v.Heap.Int32Slice(b)[0] != 2 {
			t.Error("pinned object lost in linear mode")
		}
		v.Heap.Unpin(b)
	})
}

func TestUnpinnedYoungBlockIsReset(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		for i := 0; i < 10; i++ {
			v.Heap.NewInt32Array(make([]int32, 64))
		}
		donatedBefore := v.Heap.Stats.BlocksDonated
		th.CollectYoung()
		if v.Heap.Stats.BlocksDonated != donatedBefore {
			t.Error("block donated with no pinned survivors")
		}
	})
}
