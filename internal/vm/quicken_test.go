package vm

import (
	"errors"
	"math"
	"testing"
)

// Unit tests for the quickening compiler and the fast dispatch loop:
// fusion formation, specialization, devirtualization, and — above all
// — observable equivalence with the baseline interpreter. Every test
// that executes quickened code re-executes the same method on baseline
// dispatch and demands identical results and identical traps.

// mustQuicken marks m verified (these are hand-built, structurally
// sound bodies) and compiles it, failing the test on refusal.
func mustQuicken(t *testing.T, v *VM, m *Method) QuickenInfo {
	t.Helper()
	m.Verified = true
	info, err := v.QuickenMethod(m)
	if err != nil {
		t.Fatalf("quicken %s: %v", m.FullName(), err)
	}
	if !m.Quickened() {
		t.Fatalf("quicken %s: no quick body installed", m.FullName())
	}
	return info
}

// callBoth runs m quickened, then again on baseline dispatch, and
// fails unless both produce the same value and the same error
// (including every *Trap field). It returns the shared outcome.
func callBoth(t *testing.T, v *VM, m *Method, args ...Value) (Value, error) {
	t.Helper()
	if !m.Quickened() {
		t.Fatalf("%s: not quickened", m.FullName())
	}
	var qv, bv Value
	var qerr, berr error
	v.WithThread("quick", func(th *Thread) { qv, qerr = th.Call(m, args...) })
	quick := m.quick
	m.Unquicken()
	v.WithThread("base", func(th *Thread) { bv, berr = th.Call(m, args...) })
	m.quick = quick
	if qv != bv {
		t.Errorf("%s: quickened value %+v, baseline %+v", m.FullName(), qv, bv)
	}
	compareErrs(t, m.FullName(), qerr, berr)
	return qv, qerr
}

func compareErrs(t *testing.T, name string, qerr, berr error) {
	t.Helper()
	switch {
	case qerr == nil && berr == nil:
	case qerr == nil || berr == nil:
		t.Errorf("%s: quickened err %v, baseline err %v", name, qerr, berr)
	default:
		var qt, bt *Trap
		qIsTrap, bIsTrap := errors.As(qerr, &qt), errors.As(berr, &bt)
		if qIsTrap != bIsTrap {
			t.Errorf("%s: quickened err %v (%T), baseline %v (%T)", name, qerr, qerr, berr, berr)
		} else if qIsTrap {
			if *qt != *bt {
				t.Errorf("%s: quickened trap %+v, baseline trap %+v", name, *qt, *bt)
			}
		} else if qerr.Error() != berr.Error() {
			t.Errorf("%s: quickened err %q, baseline err %q", name, qerr, berr)
		}
	}
}

func TestQuickenRejectsUnverified(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().LdcI4(1).RetVal().Build("raw", 0, 0, true))
	if _, err := v.QuickenMethod(m); err == nil {
		t.Fatal("quickened an unverified method")
	}
	if m.Quickened() {
		t.Fatal("quick body installed despite rejection")
	}
}

// TestConvF2ISaturation pins the deterministic conv.f2i semantics on
// both dispatch paths: NaN → 0, out-of-range saturates to the int64
// extremes (Go's undefined-overflow float-to-int conversion must never
// leak through), in-range truncates toward zero.
func TestConvF2ISaturation(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).Op(OpConvF2I).RetVal().
		Build("f2i", 1, 0, true))
	mustQuicken(t, v, m)

	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0},
		{1.9, 1},
		{-1.9, -1},
		{123456.5, 123456},
		{math.NaN(), 0},
		{math.Inf(1), math.MaxInt64},
		{math.Inf(-1), math.MinInt64},
		// 2^63 exactly: not representable as int64, saturates high.
		{9223372036854775808.0, math.MaxInt64},
		// MaxInt64 rounds up to 2^63 as a float64: still saturates.
		{9223372036854775807.0, math.MaxInt64},
		// -2^63 is exactly representable: converts, no saturation path.
		{-9223372036854775808.0, math.MinInt64},
		// First float64 below -2^63: saturates low.
		{-9223372036854777856.0, math.MinInt64},
		{1e300, math.MaxInt64},
		{-1e300, math.MinInt64},
		{2147483648.7, 2147483648},
	}
	for _, tc := range cases {
		got, err := callBoth(t, v, m, FloatValue(tc.in))
		if err != nil {
			t.Fatalf("f2i(%g): %v", tc.in, err)
		}
		if got.Int() != tc.want {
			t.Errorf("f2i(%g) = %d, want %d", tc.in, got.Int(), tc.want)
		}
	}
}

// TestQuickenIncAndCmpBrFusion: the canonical counted loop quickens
// into exactly two superinstructions (qIncLoc and a backward qCmpBr)
// and still counts correctly.
func TestQuickenIncAndCmpBrFusion(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(0).StLoc(0).
		Label("loop").
		LdLoc(0).LdcI4(1).Op(OpAdd).StLoc(0).
		LdLoc(0).LdcI4(10).Op(OpClt).BrTrue("loop").
		LdLoc(0).RetVal().
		Build("count10", 0, 1, true))
	info := mustQuicken(t, v, m)
	if info.Fused != 2 {
		t.Errorf("Fused = %d, want 2 (inc-local + compare-branch)", info.Fused)
	}
	got, err := callBoth(t, v, m)
	if err != nil || got.Int() != 10 {
		t.Fatalf("count10 = %v, %v; want 10", got, err)
	}
}

// TestQuickenBranchTargetBlocksFusion: a branch landing on the second
// instruction of a fusable pattern must keep that pattern unfused —
// the target needs its own quickened index.
func TestQuickenBranchTargetBlocksFusion(t *testing.T) {
	v := testVM()
	// The ldc.i4 1 of the increment pattern is also a join point
	// reached with one int already on the stack.
	m := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(0).StLoc(0).
		LdLoc(0).
		Label("mid").
		LdcI4(1).Op(OpAdd).StLoc(0).
		LdLoc(0).LdcI4(3).Op(OpClt).BrFalse("done").
		LdLoc(0).Br("mid").
		Label("done").
		LdLoc(0).RetVal().
		Build("joinmid", 0, 1, true))
	info := mustQuicken(t, v, m)
	// Only the compare+branch pair fuses; the increment is torn by the
	// "mid" label.
	if info.Fused != 1 {
		t.Errorf("Fused = %d, want 1", info.Fused)
	}
	got, err := callBoth(t, v, m)
	if err != nil || got.Int() != 3 {
		t.Fatalf("joinmid = %v, %v; want 3", got, err)
	}
}

// TestQuickenLdArgCallFusion: ldarg feeding a static call fuses, and
// the fused form passes the argument in the right position (it is the
// LAST argument of the callee).
func TestQuickenLdArgCallFusion(t *testing.T) {
	v := testVM()
	sub := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).LdArg(1).Op(OpSub).RetVal().
		Build("sub", 2, 0, true))
	sub.Verified = true
	caller := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(10).LdArg(0).Call(sub).RetVal().
		Build("caller", 1, 0, true))
	info := mustQuicken(t, v, caller)
	if info.Fused != 1 {
		t.Errorf("Fused = %d, want 1", info.Fused)
	}
	got, err := callBoth(t, v, caller, IntValue(3))
	if err != nil || got.Int() != 7 {
		t.Fatalf("caller(3) = %v, %v; want 10-3 = 7", got, err)
	}
}

// TestQuickenMixedEngines: a quickened caller invoking a baseline
// callee and a baseline caller invoking a quickened callee both work —
// run() drives frame by frame.
func TestQuickenMixedEngines(t *testing.T) {
	v := testVM()
	double := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).LdcI4(2).Op(OpMul).RetVal().
		Build("double", 1, 0, true))
	outer := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).Call(double).LdcI4(1).Op(OpAdd).RetVal().
		Build("outer", 1, 0, true))

	run := func(want int64) {
		t.Helper()
		var got Value
		var err error
		v.WithThread("t", func(th *Thread) { got, err = th.Call(outer, IntValue(20)) })
		if err != nil || got.Int() != want {
			t.Fatalf("outer(20) = %v, %v; want %d", got, err, want)
		}
	}
	// quick caller → baseline callee
	mustQuicken(t, v, outer)
	run(41)
	// quick caller → quick callee
	mustQuicken(t, v, double)
	run(41)
	// baseline caller → quick callee
	outer.Unquicken()
	run(41)
}

// TestQuickenRecursion: self-recursive quickened methods (frame
// suspend/resume through fr.qpc) compute correctly.
func TestQuickenRecursion(t *testing.T) {
	v := testVM()
	// fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
	b := NewCodeBuilder()
	fib := &Method{Name: "fib", NArgs: 1, HasRet: true}
	fib = v.AddMethod(nil, fib)
	b.LdArg(0).LdcI4(2).Op(OpClt).BrFalse("rec").
		LdArg(0).RetVal().
		Label("rec").
		LdArg(0).LdcI4(1).Op(OpSub).Call(fib).
		LdArg(0).LdcI4(2).Op(OpSub).Call(fib).
		Op(OpAdd).RetVal()
	built := b.Build("fib", 1, 0, true)
	fib.Code, fib.Lines = built.Code, built.Lines
	mustQuicken(t, v, fib)

	got, err := callBoth(t, v, fib, IntValue(15))
	if err != nil || got.Int() != 610 {
		t.Fatalf("fib(15) = %v, %v; want 610", got, err)
	}
}

// addVirtual registers a virtual method on owner.
func addVirtual(v *VM, owner *MethodTable, name string, ret int32) *Method {
	m := &Method{Name: name, NArgs: 1, HasRet: true, Virtual: true,
		Code: NewCodeBuilder().LdcI4(ret).RetVal().Build("x", 1, 0, true).Code}
	m.Verified = true
	return v.AddMethod(owner, m)
}

func TestQuickenVirtualDispatch(t *testing.T) {
	v := testVM()
	base := v.MustNewClass("VBase", nil, nil)
	derived := v.MustNewClass("VDerived", base, nil)
	baseGet := addVirtual(v, base, "get", 1)
	addVirtual(v, derived, "get", 2)

	caller := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).CallVirt(baseGet).RetVal().
		Build("vcall", 1, 0, true))
	mustQuicken(t, v, caller)

	alloc := func(mt *MethodTable) Value {
		ref, err := v.Heap.AllocClass(mt)
		if err != nil {
			t.Fatal(err)
		}
		return RefValue(ref)
	}
	// Same quickened site sees both receiver types: the inline cache
	// must re-resolve, not serve the stale implementation.
	for i := 0; i < 3; i++ {
		if got, err := callBoth(t, v, caller, alloc(base)); err != nil || got.Int() != 1 {
			t.Fatalf("vcall(base) = %v, %v; want 1", got, err)
		}
		if got, err := callBoth(t, v, caller, alloc(derived)); err != nil || got.Int() != 2 {
			t.Fatalf("vcall(derived) = %v, %v; want 2", got, err)
		}
	}
	// Null receiver traps identically.
	if _, err := callBoth(t, v, caller, Value{IsRef: true}); err == nil {
		t.Fatal("null receiver did not trap")
	}
}

// TestQuickenDevirtualization: an exact-type fact at a callvirt site
// binds the implementation at quicken time (qCallExact), and the
// devirtualized call still null-checks its receiver.
func TestQuickenDevirtualization(t *testing.T) {
	v := testVM()
	base := v.MustNewClass("DBase", nil, nil)
	derived := v.MustNewClass("DDerived", base, nil)
	baseGet := addVirtual(v, base, "get", 1)
	addVirtual(v, derived, "get", 2)

	caller := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).CallVirt(baseGet).RetVal().
		Build("dcall", 1, 0, true))
	// ldarg is 3 bytes; the callvirt sits at pc=3. Claim the receiver
	// is exactly DDerived, as the verifier would for an allocation-site
	// receiver.
	caller.Facts = map[int]InstFact{3: {ExactType: uint32(derived.Index) + 1}}
	info := mustQuicken(t, v, caller)
	if info.Devirted != 1 {
		t.Fatalf("Devirted = %d, want 1", info.Devirted)
	}

	ref, err := v.Heap.AllocClass(derived)
	if err != nil {
		t.Fatal(err)
	}
	got, cerr := callBoth(t, v, caller, RefValue(ref))
	if cerr != nil || got.Int() != 2 {
		t.Fatalf("dcall = %v, %v; want 2", got, cerr)
	}
	// Exactness proves the implementation, never non-nullness.
	var trap *Trap
	_, cerr = callBoth(t, v, caller, Value{IsRef: true})
	if !errors.As(cerr, &trap) || trap.Kind != "null reference" || trap.Detail != "callvirt receiver" {
		t.Fatalf("null receiver on devirtualized call: %v, want null-reference trap", cerr)
	}
}

// TestQuickenExactFieldAccess: exact receiver facts bake the field
// descriptor (qLdFldD / qStFldD) without changing observable results.
func TestQuickenExactFieldAccess(t *testing.T) {
	v := testVM()
	pt := pointClass(v)
	b := NewCodeBuilder().
		LdArg(0).LdcI4(7).StFld(pt, "x"). // pcs 0,3,8
		LdArg(0).LdFld(pt, "x").          // pcs 11,14
		RetVal()
	m := v.AddMethod(nil, b.Build("fld", 1, 0, true))
	m.Facts = map[int]InstFact{
		8:  {ExactType: uint32(pt.Index) + 1, StoreChecked: true},
		14: {ExactType: uint32(pt.Index) + 1},
	}
	mustQuicken(t, v, m)
	ref, err := v.Heap.AllocClass(pt)
	if err != nil {
		t.Fatal(err)
	}
	got, cerr := callBoth(t, v, m, RefValue(ref))
	if cerr != nil || got.Int() != 7 {
		t.Fatalf("fld = %v, %v; want 7", got, cerr)
	}
}

// TestQuickenArrayOps: allocation, stores, loads and ldlen round-trip
// identically, with and without an exact array-type fact.
func TestQuickenArrayOps(t *testing.T) {
	v := testVM()
	at := v.ArrayType(KindInt64, nil, 1)
	build := func(name string) *Method {
		return NewCodeBuilder().
			LdcI4(4).NewArr(at).StLoc(0). // arr = new int64[4]
			LdLoc(0).LdcI4(2).LdcI4(41).Op(OpStElem).
			LdLoc(0).LdcI4(2).Op(OpLdElem).
			LdLoc(0).Op(OpLdLen).
			Op(OpAdd).RetVal(). // 41 + 4
			Build(name, 0, 1, true)
	}
	m := v.AddMethod(nil, build("arr"))
	mustQuicken(t, v, m)
	got, err := callBoth(t, v, m)
	if err != nil || got.Int() != 45 {
		t.Fatalf("arr = %v, %v; want 45", got, err)
	}

	// Same body with exact facts on the element ops (layout baked).
	m2 := v.AddMethod(nil, build("arrK"))
	// Locate the stelem/ldelem pcs from the built code.
	facts := map[int]InstFact{}
	for pc := 0; pc < len(m2.Code); {
		op := Op(m2.Code[pc])
		if op == OpStElem {
			facts[pc] = InstFact{ExactType: uint32(at.Index) + 1, StoreChecked: true}
		}
		if op == OpLdElem {
			facts[pc] = InstFact{ExactType: uint32(at.Index) + 1}
		}
		pc += 1 + op.operandBytes()
	}
	m2.Facts = facts
	mustQuicken(t, v, m2)
	got, err = callBoth(t, v, m2)
	if err != nil || got.Int() != 45 {
		t.Fatalf("arrK = %v, %v; want 45", got, err)
	}
}

// TestQuickenStepBudgetParity: the step budget is charged at the same
// program points in both loops — exhaustion surfaces the same trap at
// the same pc after the same number of steps.
func TestQuickenStepBudgetParity(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(0).StLoc(0).
		Label("loop").
		LdLoc(0).LdcI4(1).Op(OpAdd).StLoc(0).
		Br("loop").
		Build("spin", 0, 1, false))
	mustQuicken(t, v, m)

	for _, budget := range []int64{1, 2, 3, 17} {
		var qerr, berr error
		v.WithThread("quick", func(th *Thread) {
			th.SetStepBudget(budget)
			_, qerr = th.Call(m)
		})
		quick := m.quick
		m.Unquicken()
		v.WithThread("base", func(th *Thread) {
			th.SetStepBudget(budget)
			_, berr = th.Call(m)
		})
		m.quick = quick
		if qerr == nil || berr == nil {
			t.Fatalf("budget %d: expected traps, got %v / %v", budget, qerr, berr)
		}
		compareErrs(t, "spin", qerr, berr)
	}
}

// TestQuickenInternAndGlobals: FCalls and static slots behave
// identically; the intern index is resolved per dispatch so a
// re-registered internal is honored by already-quickened code.
func TestQuickenInternAndGlobals(t *testing.T) {
	v := testVM()
	g := v.AddGlobal("qtest.g")
	val := int64(5)
	v.RegisterInternal(InternalFunc{
		Name: "qtest.val", NArgs: 0, HasRet: true,
		Fn: func(t *Thread, args []Value) (Value, error) { return IntValue(val), nil },
	})
	m := v.AddMethod(nil, NewCodeBuilder().
		InternName(v, "qtest.val").StSFld(g).
		LdSFld(g).LdcI4(100).Op(OpAdd).RetVal().
		Build("ig", 0, 0, true))
	mustQuicken(t, v, m)
	got, err := callBoth(t, v, m)
	if err != nil || got.Int() != 105 {
		t.Fatalf("ig = %v, %v; want 105", got, err)
	}
	// Re-point the internal; the quickened body must see the new one.
	v.RegisterInternal(InternalFunc{
		Name: "qtest.val", NArgs: 0, HasRet: true,
		Fn: func(t *Thread, args []Value) (Value, error) { return IntValue(900), nil },
	})
	got, err = callBoth(t, v, m)
	if err != nil || got.Int() != 1000 {
		t.Fatalf("ig after re-register = %v, %v; want 1000", got, err)
	}
}
