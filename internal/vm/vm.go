package vm

import (
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"sync"
)

// Config configures a VM instance.
type Config struct {
	Heap HeapConfig
	// Name labels the VM in diagnostics (usually "rank N").
	Name string
	// Stdout receives console output from managed programs; defaults
	// to os.Stdout.
	Stdout io.Writer
}

// VM is one managed runtime instance: a heap, a type registry, static
// (global) storage, registered internal calls, and a set of managed
// threads coordinated through cooperative safepoints. In a Motor
// world each MPI rank owns exactly one VM, as each SSCLI process did
// in the paper.
type VM struct {
	Name string
	Heap *Heap

	// Handles provides stable, GC-updated references for Go-side
	// holders of managed objects.
	Handles *HandleTable

	types      []*MethodTable
	typeByName map[string]*MethodTable
	arrayTypes map[arrayKey]*MethodTable

	// ObjectMT is the root of the class hierarchy (System.Object).
	ObjectMT *MethodTable

	methods []*Method

	globals     []Value
	globalNames map[string]int

	internals     []InternalFunc
	internalNames map[string]int

	// extraRoots lets embedders (the message-passing core, the
	// serializer buffer stack) contribute GC roots.
	extraRoots []RootProvider

	// typeGen counts registry events that invalidate externally held
	// method-table references (today: Load rollback unregistering
	// types). The serializer's per-peer type-table caches compare it
	// to decide when to resynchronize.
	typeGen uint64

	// gcHooks run at the start of every collection's mark phase,
	// before roots are traced. The Motor core uses one to reconcile
	// transport state (paper §7.4).
	gcHooks []func()

	// traceLane is the obs lane (world rank) this VM's events are
	// recorded under; set by the message-passing core at attach time,
	// 0 for VMs outside a world.
	traceLane int

	// execMu is the managed-execution token: held by the one thread
	// currently running managed code; released at every poll point.
	execMu sync.Mutex
	// mu guards the thread registry.
	mu      sync.Mutex
	threads map[*Thread]struct{}

	out io.Writer
}

func (v *VM) stdout() io.Writer {
	if v.out != nil {
		return v.out
	}
	return os.Stdout
}

type arrayKey struct {
	elem Kind
	mt   *MethodTable
	rank int
}

// RootProvider enumerates managed references held outside the heap.
// The visitor must be applied to every slot; the returned Ref replaces
// the slot's value (the collector forwards moved objects this way).
type RootProvider interface {
	VisitRoots(visit func(Ref) Ref)
}

// RootFunc adapts a function to RootProvider. RootFunc values are not
// comparable and therefore cannot be removed again; transient holders
// should use RefRoots instead.
type RootFunc func(visit func(Ref) Ref)

// VisitRoots implements RootProvider.
func (f RootFunc) VisitRoots(visit func(Ref) Ref) { f(visit) }

// RefRoots is a removable RootProvider over a slice of references —
// the standard way for Go-side code to keep a working set of managed
// objects alive and up to date across collections.
type RefRoots struct {
	Refs []Ref
}

// VisitRoots implements RootProvider.
func (g *RefRoots) VisitRoots(visit func(Ref) Ref) {
	for i, r := range g.Refs {
		if r != NullRef {
			g.Refs[i] = visit(r)
		}
	}
}

// New creates a VM with the root object type registered.
func New(cfg Config) *VM {
	v := &VM{
		Name:          cfg.Name,
		typeByName:    make(map[string]*MethodTable),
		arrayTypes:    make(map[arrayKey]*MethodTable),
		globalNames:   make(map[string]int),
		internalNames: make(map[string]int),
		threads:       make(map[*Thread]struct{}),
		out:           cfg.Stdout,
	}
	v.Handles = newHandleTable()
	v.Heap = newHeap(v, cfg.Heap)
	v.ObjectMT = v.defineType(&MethodTable{Name: "object", Kind: TKClass})
	registerBuiltins(v)
	return v
}

func (v *VM) defineType(mt *MethodTable) *MethodTable {
	mt.Index = len(v.types)
	v.types = append(v.types, mt)
	if mt.Name != "" {
		v.typeByName[mt.Name] = mt
	}
	return mt
}

// FieldSpec declares one field of a class under construction.
type FieldSpec struct {
	Name          string
	Kind          Kind
	Type          *MethodTable // declared class for KindRef fields (nil = object)
	Transportable bool
}

// DeclareClass registers an empty class shell so that mutually or
// self-referential field types can be resolved before layout. The
// shell must be completed with CompleteClass before instantiation.
func (v *VM) DeclareClass(name string) (*MethodTable, error) {
	if _, dup := v.typeByName[name]; dup {
		return nil, fmt.Errorf("vm: duplicate type %q", name)
	}
	mt := &MethodTable{Name: name, Kind: TKClass}
	return v.defineType(mt), nil
}

// CompleteClass lays out a declared shell: fields are placed after
// any inherited fields, naturally aligned. The parent (nil means the
// root object type) must already be completed.
func (v *VM) CompleteClass(mt *MethodTable, parent *MethodTable, fields []FieldSpec) error {
	if parent == nil {
		parent = v.ObjectMT
	}
	mt.Parent = parent
	mt.Fields = append(mt.Fields, parent.Fields...)
	mt.VTable = append(mt.VTable, parent.VTable...)
	off := parent.InstanceSize
	for _, fs := range fields {
		if mt.FieldByName(fs.Name) != nil {
			return fmt.Errorf("vm: duplicate field %s.%s", mt.Name, fs.Name)
		}
		sz := uint32(fs.Kind.Size())
		if sz == 0 {
			return fmt.Errorf("vm: field %s.%s has void kind", mt.Name, fs.Name)
		}
		off = alignTo(off, sz)
		mt.Fields = append(mt.Fields, makeFieldDesc(fs.Name, off, fs.Kind, fs.Transportable, fs.Type))
		off += sz
	}
	mt.InstanceSize = align8(off)
	mt.RefOffsets = nil
	for i := range mt.Fields {
		if mt.Fields[i].IsRef() {
			mt.RefOffsets = append(mt.RefOffsets, mt.Fields[i].Offset())
		}
	}
	sort.Slice(mt.RefOffsets, func(i, j int) bool { return mt.RefOffsets[i] < mt.RefOffsets[j] })
	return nil
}

// NewClass registers and lays out a class type in one step (for
// types without forward references).
func (v *VM) NewClass(name string, parent *MethodTable, fields []FieldSpec) (*MethodTable, error) {
	mt, err := v.DeclareClass(name)
	if err != nil {
		return nil, err
	}
	if err := v.CompleteClass(mt, parent, fields); err != nil {
		return nil, err
	}
	return mt, nil
}

// MustNewClass is NewClass that panics on error (test/setup paths).
func (v *VM) MustNewClass(name string, parent *MethodTable, fields []FieldSpec) *MethodTable {
	mt, err := v.NewClass(name, parent, fields)
	if err != nil {
		panic(err)
	}
	return mt
}

func alignTo(off, a uint32) uint32 {
	if a > 8 {
		a = 8
	}
	return (off + a - 1) &^ (a - 1)
}

// ArrayType returns the canonical array type for the element shape,
// creating it on first use. For object arrays pass KindRef and the
// element class (nil for arrays of the root object type).
func (v *VM) ArrayType(elem Kind, elemMT *MethodTable, rank int) *MethodTable {
	if rank < 1 {
		rank = 1
	}
	key := arrayKey{elem, elemMT, rank}
	if mt, ok := v.arrayTypes[key]; ok {
		return mt
	}
	name := arrayTypeName(elem, elemMT, rank)
	mt := &MethodTable{Name: name, Kind: TKArray, Elem: elem, ElemMT: elemMT, Rank: rank}
	v.arrayTypes[key] = mt
	return v.defineType(mt)
}

// TypeByName resolves a registered type name.
func (v *VM) TypeByName(name string) (*MethodTable, bool) {
	mt, ok := v.typeByName[name]
	return mt, ok
}

// TypeByIndex returns the method table with registry index i.
func (v *VM) TypeByIndex(i int) (*MethodTable, bool) {
	if i < 0 || i >= len(v.types) {
		return nil, false
	}
	return v.types[i], true
}

// NumTypes reports the registry size.
func (v *VM) NumTypes() int { return len(v.types) }

// TypeGen reports the current type-registry generation. It changes
// whenever previously registered types become invalid (Load rollback);
// callers holding *MethodTable-keyed caches must flush when it moves.
func (v *VM) TypeGen() uint64 { return v.typeGen }

// AddMethod attaches a method to a type (or to the module when owner
// is nil) and assigns its global index and virtual slot.
func (v *VM) AddMethod(owner *MethodTable, m *Method) *Method {
	m.Owner = owner
	m.Index = len(v.methods)
	v.methods = append(v.methods, m)
	if owner != nil {
		owner.Methods = append(owner.Methods, m)
		if m.Virtual {
			syncVTable(owner)
			slot := -1
			for p := owner.Parent; p != nil && slot < 0; p = p.Parent {
				if pm := p.MethodByName(m.Name); pm != nil && pm.Virtual {
					slot = pm.VSlot
				}
			}
			if slot < 0 {
				slot = len(owner.VTable)
				owner.VTable = append(owner.VTable, m)
			} else {
				owner.VTable[slot] = m
			}
			m.VSlot = slot
		}
	}
	return m
}

// syncVTable brings a type's vtable up to date with its ancestors'
// slots. Base-class virtual methods must be registered before
// subclass overrides (the assembler's declaration order guarantees
// this for masm programs).
func syncVTable(mt *MethodTable) {
	if mt.Parent == nil {
		return
	}
	syncVTable(mt.Parent)
	for len(mt.VTable) < len(mt.Parent.VTable) {
		mt.VTable = append(mt.VTable, mt.Parent.VTable[len(mt.VTable)])
	}
}

// lookupVSlot resolves a virtual slot against a receiver type whose
// own vtable may be shorter than the slot (no overrides registered
// after ancestors grew): the nearest ancestor covering the slot holds
// the inherited implementation.
func lookupVSlot(mt *MethodTable, slot int) *Method {
	for t := mt; t != nil; t = t.Parent {
		if slot < len(t.VTable) && t.VTable[slot] != nil {
			return t.VTable[slot]
		}
	}
	return nil
}

// MethodByIndex resolves a call operand.
func (v *VM) MethodByIndex(i int) (*Method, bool) {
	if i < 0 || i >= len(v.methods) {
		return nil, false
	}
	return v.methods[i], true
}

// NumMethods reports the number of registered methods (the operand
// space of call instructions).
func (v *VM) NumMethods() int { return len(v.methods) }

// MethodByName finds a module-level method by name.
func (v *VM) MethodByName(name string) (*Method, bool) {
	for _, m := range v.methods {
		if m.Owner == nil && m.Name == name {
			return m, true
		}
	}
	return nil, false
}

// --- registry rollback ------------------------------------------------------

// RegistryMark captures the sizes of the VM's append-only registries
// (types, methods, globals, internal calls) so a failed module load
// can be undone. Take one with Mark before assembling; pass it to
// RollbackRegistry if assembly or verification rejects the module.
type RegistryMark struct {
	types, methods, globals, internals int
}

// Mark snapshots the registries.
func (v *VM) Mark() RegistryMark {
	return RegistryMark{
		types:     len(v.types),
		methods:   len(v.methods),
		globals:   len(v.globals),
		internals: len(v.internals),
	}
}

// RollbackRegistry removes every type, method, global and internal
// call registered after mark, so a rejected module leaves nothing
// callable behind — a later module's call operands cannot reach its
// unverified methods, and its class and global names become free
// again. Only artifacts registered since the mark are touched; methods
// attached to pre-existing types are detached and their vtable slots
// restored to the inherited implementation.
func (v *VM) RollbackRegistry(mark RegistryMark) {
	if len(v.types) > mark.types {
		// Unregistering types invalidates anything keyed on method
		// tables outside the VM (the serializer's per-peer type-table
		// caches); bump the generation so they resynchronize.
		v.typeGen++
	}
	for i := len(v.methods) - 1; i >= mark.methods; i-- {
		m := v.methods[i]
		o := m.Owner
		if o == nil || o.Index >= mark.types {
			continue // owner is being removed wholesale (or module-level)
		}
		for j := len(o.Methods) - 1; j >= 0; j-- {
			if o.Methods[j] == m {
				o.Methods = append(o.Methods[:j], o.Methods[j+1:]...)
				break
			}
		}
		if m.Virtual && m.VSlot < len(o.VTable) && o.VTable[m.VSlot] == m {
			var inherited *Method
			if o.Parent != nil {
				inherited = lookupVSlot(o.Parent, m.VSlot)
			}
			switch {
			case inherited != nil:
				o.VTable[m.VSlot] = inherited
			case m.VSlot == len(o.VTable)-1:
				o.VTable = o.VTable[:m.VSlot]
			default:
				o.VTable[m.VSlot] = nil
			}
		}
	}
	v.methods = v.methods[:mark.methods]

	for _, mt := range v.types[mark.types:] {
		if mt.Name != "" {
			delete(v.typeByName, mt.Name)
		}
	}
	for key, mt := range v.arrayTypes {
		if mt.Index >= mark.types {
			delete(v.arrayTypes, key)
		}
	}
	v.types = v.types[:mark.types]

	for name, i := range v.globalNames {
		if i >= mark.globals {
			delete(v.globalNames, name)
		}
	}
	v.globals = v.globals[:mark.globals]

	for name, i := range v.internalNames {
		if i >= mark.internals {
			delete(v.internalNames, name)
		}
	}
	v.internals = v.internals[:mark.internals]
}

// --- globals (statics) ----------------------------------------------------

// AddGlobal registers a named static slot and returns its index.
func (v *VM) AddGlobal(name string) int {
	if i, ok := v.globalNames[name]; ok {
		return i
	}
	i := len(v.globals)
	v.globals = append(v.globals, Value{})
	v.globalNames[name] = i
	return i
}

// NumGlobals reports the number of registered static slots (the
// operand space of ldsfld/stsfld, used by the verifier).
func (v *VM) NumGlobals() int { return len(v.globals) }

// GlobalNames returns the registered static slot names in index order.
// Core's module verdict cache folds them into its registry fingerprint.
func (v *VM) GlobalNames() []string {
	out := make([]string, len(v.globals))
	for name, i := range v.globalNames {
		out[i] = name
	}
	return out
}

// GlobalIndex resolves a static name.
func (v *VM) GlobalIndex(name string) (int, bool) {
	i, ok := v.globalNames[name]
	return i, ok
}

// GetGlobal reads static slot i.
func (v *VM) GetGlobal(i int) Value { return v.globals[i] }

// SetGlobal writes static slot i.
func (v *VM) SetGlobal(i int, val Value) { v.globals[i] = val }

// --- roots and hooks --------------------------------------------------------

// AddRootProvider registers an additional source of GC roots.
func (v *VM) AddRootProvider(p RootProvider) { v.extraRoots = append(v.extraRoots, p) }

// RemoveRootProvider unregisters a provider previously added with
// AddRootProvider (matched by identity; the provider must be of a
// comparable type such as a pointer — use RefRoots, not RootFunc).
// Transient holders of managed references — the deserializer while it
// builds an object graph, for example — register themselves for their
// lifetime only.
func (v *VM) RemoveRootProvider(p RootProvider) {
	if !reflect.TypeOf(p).Comparable() {
		panic("vm: RemoveRootProvider requires a comparable provider (use *RefRoots, not RootFunc)")
	}
	for i, q := range v.extraRoots {
		if reflect.TypeOf(q).Comparable() && q == p {
			v.extraRoots = append(v.extraRoots[:i], v.extraRoots[i+1:]...)
			return
		}
	}
}

// AddGCHook registers a function run at the start of every
// collection, before marking. The Motor message-passing core uses it
// to advance transport progress bookkeeping so conditional pin
// requests observe fresh completion status.
func (v *VM) AddGCHook(f func()) { v.gcHooks = append(v.gcHooks, f) }

// SetTraceLane assigns the obs lane (world rank) for this VM's GC
// trace events.
func (v *VM) SetTraceLane(rank int) { v.traceLane = rank }

// --- internal calls (FCalls) -------------------------------------------------

// InternalFunc is the Go implementation of an internal call. It runs
// on the calling managed thread; args are the operands popped from
// the evaluation stack (in declaration order). Any managed references
// the implementation holds across a potential GC point must live in a
// protected Frame (see Thread.PushFrame), mirroring the protected
// object pointers SSCLI FCalls must declare (paper §5.1).
type InternalFunc struct {
	Name   string
	NArgs  int
	HasRet bool
	Fn     func(t *Thread, args []Value) (Value, error)
}

// RegisterInternal adds an FCall to the registry, replacing any
// existing registration with the same name.
func (v *VM) RegisterInternal(f InternalFunc) int {
	if i, ok := v.internalNames[f.Name]; ok {
		v.internals[i] = f
		return i
	}
	i := len(v.internals)
	v.internals = append(v.internals, f)
	v.internalNames[f.Name] = i
	return i
}

// InternalIndex resolves an FCall name to its operand index.
func (v *VM) InternalIndex(name string) (int, bool) {
	i, ok := v.internalNames[name]
	return i, ok
}

// InternalByIndex returns the FCall with the given operand index.
func (v *VM) InternalByIndex(i int) (*InternalFunc, bool) {
	if i < 0 || i >= len(v.internals) {
		return nil, false
	}
	return &v.internals[i], true
}
