package vm

import "fmt"

// CheckInvariants is the debug heap verifier: it walks every space,
// validating object headers, space coverage, and every reference slot
// of every live object. Stress tests call it between collections;
// it is not intended for production hot paths.
//
// Checked invariants:
//
//   - every elder range is exactly covered by a sequence of valid
//     object and free-block headers, all 8-aligned;
//   - the younger block's used prefix is a sequence of valid objects;
//   - every reference field and reference array element of every live
//     object is null or addresses a valid object header;
//   - every explicitly pinned object is valid;
//   - elderUsed equals the sum of live object sizes over all elder
//     ranges (the occupancy counter cannot drift from the walk).
func (h *Heap) CheckInvariants() error {
	valid := make(map[Ref]bool)
	var elderLive uint32

	// Pass 1: walk spaces and record every live object location.
	var walkErr error
	record := func(space string, start, end uint32, usedOnly bool) {
		pos := start
		for pos < end {
			if pos+HeaderSize > end {
				walkErr = fmt.Errorf("vm: %s: header at %#x overruns range end %#x", space, pos, end)
				return
			}
			if pos%8 != 0 {
				walkErr = fmt.Errorf("vm: %s: misaligned header at %#x", space, pos)
				return
			}
			mtIdx := h.mtIndex(Ref(pos))
			size := h.objSize(Ref(pos))
			if size < HeaderSize || size%8 != 0 || pos+size > end {
				walkErr = fmt.Errorf("vm: %s: bad size %d at %#x", space, size, pos)
				return
			}
			if mtIdx != freeSentinel {
				if int(mtIdx) >= len(h.vm.types) {
					walkErr = fmt.Errorf("vm: %s: bad mt index %d at %#x", space, mtIdx, pos)
					return
				}
				mt := h.vm.types[mtIdx]
				want := classAllocSize(mt)
				if mt.Kind == TKArray {
					want = arrayAllocSize(mt, int(h.arrayLen(Ref(pos))))
				}
				if size != want {
					walkErr = fmt.Errorf("vm: %s: object %#x (%s) size %d, want %d", space, pos, mt, size, want)
					return
				}
				valid[Ref(pos)] = true
			}
			pos += size
		}
		if pos != end {
			walkErr = fmt.Errorf("vm: %s: walk ended at %#x, range end %#x", space, pos, end)
		}
	}

	for _, rg := range h.elderRanges {
		record("elder", rg.start, rg.end, false)
		if walkErr != nil {
			return walkErr
		}
		pos := rg.start
		for pos < rg.end {
			if h.mtIndex(Ref(pos)) != freeSentinel {
				elderLive += h.objSize(Ref(pos))
			}
			pos += h.objSize(Ref(pos))
		}
	}
	if elderLive != h.elderUsed {
		return fmt.Errorf("vm: elderUsed accounting drift: counter %d, walk %d", h.elderUsed, elderLive)
	}
	if h.youngStart != h.youngEnd {
		record("young", h.youngStart, h.youngPos, true)
		if walkErr != nil {
			return walkErr
		}
	}

	// Pass 2: every reference slot of every live object must be null
	// or point at a live object.
	for obj := range valid {
		var slotErr error
		h.scanRefSlots(obj, func(r Ref) Ref {
			if slotErr == nil && !valid[r] {
				slotErr = fmt.Errorf("vm: object %#x (%s) references invalid %#x", obj, h.MT(obj), r)
			}
			return r
		})
		if slotErr != nil {
			return slotErr
		}
	}

	// Pass 3: pinned objects must be live.
	for r := range h.pinCounts {
		if !valid[r] {
			return fmt.Errorf("vm: pinned ref %#x is not a live object", r)
		}
	}
	for _, p := range h.pinList {
		if !valid[p.ref] {
			return fmt.Errorf("vm: pinned ref %#x is not a live object", p.ref)
		}
	}
	return nil
}
