package vm

// InstFact is one pointer-free fact the load-time verifier proved
// about a single instruction, keyed by bytecode offset in
// Method.Facts. The quickening pass (quicken.go) consumes these to
// specialize dispatch: facts carry registry indices rather than
// *MethodTable / *FieldDesc pointers so the verifier package never
// depends on interpreter internals and the facts themselves can be
// cached across VMs (core's module verdict cache).
type InstFact struct {
	// ExactType is the registry index + 1 of a type the verifier
	// proved EXACT (the runtime type, not an upper bound; exactness
	// flows only from allocation sites). Zero means unknown. Per
	// opcode it types:
	//   callvirt       — the receiver (enables direct vtable-slot calls)
	//   ldfld / stfld  — the receiver (enables baked field descriptors)
	//   ldelem / stelem — the array (enables baked element layout)
	ExactType uint32

	// StoreChecked marks stfld/stelem sites where the verifier
	// statically checked the stored value's category, so the
	// quickened store may skip the dynamic scalar-into-reference
	// check. Upper-bound receiver/array types are sound for this
	// judgment; exactness is not required.
	StoreChecked bool
}
