package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"

	"motor/internal/obs"
)

// Ref is a managed object reference: a byte offset into the heap
// arena. The null reference is 0. Because refs are offsets rather
// than Go pointers, growing the arena never invalidates them — only
// the collector moves objects, and only when they are not pinned.
type Ref uint32

// NullRef is the managed null reference.
const NullRef Ref = 0

// Object header layout (16 bytes, 8-aligned):
//
//	[0:4)   method-table index (or forwarding Ref during a scavenge)
//	[4:8)   flags
//	[8:12)  total object size in bytes, including the header
//	[12:16) array length (total element count); 0 for class instances
const (
	HeaderSize = 16

	hdrMT     = 0
	hdrFlags  = 4
	hdrSize   = 8
	hdrLength = 12
)

// Header flag bits.
const (
	flagMark      uint32 = 1 << 0 // live during the current collection
	flagForwarded uint32 = 1 << 1 // header word 0 holds the new location
)

// freeSentinel marks a free block header in the elder space so linear
// sweeps can walk over free gaps.
const freeSentinel uint32 = 0xFFFFFFFF

var (
	// ErrOutOfMemory is returned when the arena limit is exhausted
	// even after a full collection.
	ErrOutOfMemory = errors.New("vm: managed heap out of memory")
	// ErrBadRef is returned by checked accessors handed an offset
	// that does not address an object.
	ErrBadRef = errors.New("vm: invalid object reference")
)

// PinMode selects the bookkeeping structure for explicit pins. The
// paper's footnote 4 observes that the pin/unpin cost depends heavily
// on the runtime build; we reproduce that by implementing both a
// linear request list (SSCLI-like) and a constant-time handle table
// (.NET-like). Ablation A4 benchmarks the difference.
type PinMode uint8

const (
	// PinHandleTable uses a map with O(1) pin/unpin.
	PinHandleTable PinMode = iota
	// PinLinearList scans a slice on every pin and unpin.
	PinLinearList
)

// CondPin is a conditional pin request (paper §4.3): the object must
// not move while Active reports true. Requests are examined during
// the mark phase of each collection; inactive requests are discarded,
// active ones pin the object for that cycle only.
type CondPin struct {
	Ref    Ref
	Active func() bool
}

// GCStats counts collector and pinning activity. The pinning-policy
// tests assert on these counters, and cmd/mpstat reports them.
type GCStats struct {
	Scavenges     uint64
	FullGCs       uint64
	BytesPromoted uint64
	BytesSwept    uint64
	BlocksDonated uint64 // younger blocks relabelled elder due to pins

	Pins            uint64 // explicit Pin calls
	Unpins          uint64
	CondPinsAdded   uint64
	CondPinsHeld    uint64 // requests found active during a mark phase
	CondPinsDropped uint64 // requests found complete and discarded

	// Modern-collector counters (gcworkers > 1). PinnedSegregated
	// counting scavenges and BlocksDonated counting fallbacks is the
	// stat pair that proves donation has become rare.
	PinnedSegregated  uint64 // scavenges that kept pinned survivors in dedicated blocks
	PinnedBlockBytes  uint64 // pinned-survivor bytes segregated in place
	NurseriesRecycled uint64 // nurseries re-installed over elder free space instead of fresh arena
	DonatedLiveBytes  uint64 // pinned-survivor bytes kept live by whole-block donation
	DonatedDeadBytes  uint64 // dead-gap bytes a donation returned to the free lists
	ParallelMarks     uint64 // full collections marked by the worker pool
	Compactions       uint64 // elder sliding compactions performed
	BytesCompacted    uint64 // live bytes moved by compaction

	PauseNs    uint64 // total stop-the-world nanoseconds
	MaxPauseNs uint64 // longest single collection
}

// Snapshot returns a consistent copy of the counters. All writers
// bump atomically (and only under the execution token), so this is
// safe to call from any goroutine — the obs registry and the async
// progress engine read stats while managed threads collect.
func (s *GCStats) Snapshot() GCStats {
	return GCStats{
		Scavenges:       atomic.LoadUint64(&s.Scavenges),
		FullGCs:         atomic.LoadUint64(&s.FullGCs),
		BytesPromoted:   atomic.LoadUint64(&s.BytesPromoted),
		BytesSwept:      atomic.LoadUint64(&s.BytesSwept),
		BlocksDonated:   atomic.LoadUint64(&s.BlocksDonated),
		Pins:            atomic.LoadUint64(&s.Pins),
		Unpins:          atomic.LoadUint64(&s.Unpins),
		CondPinsAdded:   atomic.LoadUint64(&s.CondPinsAdded),
		CondPinsHeld:    atomic.LoadUint64(&s.CondPinsHeld),
		CondPinsDropped: atomic.LoadUint64(&s.CondPinsDropped),

		PinnedSegregated:  atomic.LoadUint64(&s.PinnedSegregated),
		PinnedBlockBytes:  atomic.LoadUint64(&s.PinnedBlockBytes),
		NurseriesRecycled: atomic.LoadUint64(&s.NurseriesRecycled),
		DonatedLiveBytes:  atomic.LoadUint64(&s.DonatedLiveBytes),
		DonatedDeadBytes:  atomic.LoadUint64(&s.DonatedDeadBytes),
		ParallelMarks:     atomic.LoadUint64(&s.ParallelMarks),
		Compactions:       atomic.LoadUint64(&s.Compactions),
		BytesCompacted:    atomic.LoadUint64(&s.BytesCompacted),

		PauseNs:    atomic.LoadUint64(&s.PauseNs),
		MaxPauseNs: atomic.LoadUint64(&s.MaxPauseNs),
	}
}

type rng struct{ start, end uint32 }

type freeBlock struct {
	off  uint32
	size uint32
}

// HeapConfig sizes a heap. Zero values select defaults.
type HeapConfig struct {
	YoungSize       uint32 // size of the younger-generation block
	InitialElder    uint32 // first elder range carved at startup
	ArenaMax        uint32 // hard ceiling on total arena bytes
	PinMode         PinMode
	FullGCThreshold uint32 // elder bytes allocated between full GCs

	// GCWorkers selects the collector. 1 is the exact-legacy serial
	// collector of §5.2 (scavenge + donation + never-compacted elder);
	// >1 enables the modern collector: work-stealing parallel mark,
	// pin-aware promotion (dedicated pinned blocks instead of
	// whole-block donation), and elder sliding compaction. 0 resolves
	// MOTOR_GCWORKERS, then defaults to NumCPU clamped to [2,8] — the
	// modern collector is the default even on one CPU so behaviour is
	// machine-independent.
	GCWorkers int
}

func (c *HeapConfig) fill() {
	if c.YoungSize == 0 {
		c.YoungSize = 1 << 20 // 1 MiB nursery
	}
	if c.InitialElder == 0 {
		c.InitialElder = 4 << 20
	}
	if c.ArenaMax == 0 {
		c.ArenaMax = 256 << 20
	}
	if c.FullGCThreshold == 0 {
		c.FullGCThreshold = 16 << 20
	}
	if c.GCWorkers == 0 {
		if s := os.Getenv("MOTOR_GCWORKERS"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				c.GCWorkers = n
			}
		}
	}
	if c.GCWorkers == 0 {
		n := runtime.NumCPU()
		if n < 2 {
			n = 2
		}
		if n > 8 {
			n = 8
		}
		c.GCWorkers = n
	}
	if c.GCWorkers < 1 {
		c.GCWorkers = 1
	}
}

// Heap is the managed memory of one VM: a single arena addressed by
// Ref offsets, split into a bump-allocated younger block and a set of
// elder ranges managed with free lists (the elder generation is never
// compacted, matching the SSCLI collector described in §5.2).
type Heap struct {
	vm *VM

	mem []byte
	brk uint32 // arena break: lowest unallocated arena offset
	max uint32

	youngSize  uint32
	youngStart uint32
	youngPos   uint32
	youngEnd   uint32

	elderRanges []rng
	freeList    []freeBlock
	elderUsed   uint32
	sinceFull   uint32
	fullEvery   uint32

	pinMode   PinMode
	pinCounts map[Ref]int
	pinList   []pinEntry
	condPins  []CondPin

	// remembered holds elder objects that may contain references into
	// the younger generation; maintained by the write barrier.
	remembered map[Ref]struct{}

	// inGC suppresses re-entrant collection triggers while the
	// collector itself allocates elder space for promotions.
	inGC bool

	// gcWorkers is the resolved GCWorkers knob: 1 = legacy serial
	// collector, >1 = modern collector with that many mark workers.
	gcWorkers int

	// markBits is the modern collector's side mark bitmap: one bit per
	// 8 arena bytes, reused (and re-zeroed) across cycles so a full
	// collection does not allocate. The legacy collector marks in
	// header flags instead.
	markBits []uint64

	// compactRequested forces elder compaction on the next full
	// collection of the modern collector, regardless of heuristics.
	compactRequested bool

	Stats GCStats
}

func newHeap(vm *VM, cfg HeapConfig) *Heap {
	cfg.fill()
	h := &Heap{
		vm:         vm,
		max:        cfg.ArenaMax,
		youngSize:  cfg.YoungSize,
		fullEvery:  cfg.FullGCThreshold,
		pinMode:    cfg.PinMode,
		gcWorkers:  cfg.GCWorkers,
		pinCounts:  make(map[Ref]int),
		remembered: make(map[Ref]struct{}),
	}
	// Offset 0 is reserved so that NullRef never addresses an object.
	h.brk = 8
	start, err := h.carve(cfg.InitialElder)
	if err != nil {
		panic("vm: initial elder range exceeds arena max")
	}
	h.addElderRange(start, start+cfg.InitialElder)
	if err := h.newYoungBlock(); err != nil {
		panic("vm: initial young block exceeds arena max")
	}
	return h
}

// carve reserves size bytes of fresh arena, growing mem as needed.
func (h *Heap) carve(size uint32) (uint32, error) {
	off := align8(h.brk)
	if off+size > h.max || off+size < off {
		return 0, ErrOutOfMemory
	}
	need := int(off + size)
	if need > len(h.mem) {
		grow := len(h.mem)
		if grow < 1<<20 {
			grow = 1 << 20
		}
		for len(h.mem)+grow < need {
			grow *= 2
		}
		if len(h.mem)+grow < need {
			grow = need - len(h.mem)
		}
		h.mem = append(h.mem, make([]byte, grow)...)
	}
	h.brk = off + size
	return off, nil
}

func (h *Heap) newYoungBlock() error {
	start, err := h.carve(h.youngSize)
	if err != nil {
		return err
	}
	h.youngStart, h.youngPos, h.youngEnd = start, start, start+h.youngSize
	return nil
}

func (h *Heap) addElderRange(start, end uint32) {
	h.elderRanges = append(h.elderRanges, rng{start, end})
	h.writeFreeBlock(start, end-start)
	h.freeList = append(h.freeList, freeBlock{start, end - start})
}

func (h *Heap) writeFreeBlock(off, size uint32) {
	binary.LittleEndian.PutUint32(h.mem[off+hdrMT:], freeSentinel)
	binary.LittleEndian.PutUint32(h.mem[off+hdrFlags:], 0)
	binary.LittleEndian.PutUint32(h.mem[off+hdrSize:], size)
	binary.LittleEndian.PutUint32(h.mem[off+hdrLength:], 0)
}

func align8(n uint32) uint32 { return (n + 7) &^ 7 }

// IsYoung reports whether ref currently lies in the younger block.
func (h *Heap) IsYoung(ref Ref) bool {
	return uint32(ref) >= h.youngStart && uint32(ref) < h.youngEnd
}

// --- raw header access -------------------------------------------------

func (h *Heap) u32(off uint32) uint32       { return binary.LittleEndian.Uint32(h.mem[off:]) }
func (h *Heap) putU32(off uint32, v uint32) { binary.LittleEndian.PutUint32(h.mem[off:], v) }

func (h *Heap) mtIndex(ref Ref) uint32  { return h.u32(uint32(ref) + hdrMT) }
func (h *Heap) flags(ref Ref) uint32    { return h.u32(uint32(ref) + hdrFlags) }
func (h *Heap) objSize(ref Ref) uint32  { return h.u32(uint32(ref) + hdrSize) }
func (h *Heap) arrayLen(ref Ref) uint32 { return h.u32(uint32(ref) + hdrLength) }

func (h *Heap) setFlags(ref Ref, f uint32)   { h.putU32(uint32(ref)+hdrFlags, f) }
func (h *Heap) orFlags(ref Ref, f uint32)    { h.putU32(uint32(ref)+hdrFlags, h.flags(ref)|f) }
func (h *Heap) clearFlags(ref Ref, f uint32) { h.putU32(uint32(ref)+hdrFlags, h.flags(ref)&^f) }

// MT returns the method table of the object at ref.
func (h *Heap) MT(ref Ref) *MethodTable {
	idx := h.mtIndex(ref)
	if int(idx) >= len(h.vm.types) {
		panic(fmt.Sprintf("vm: corrupt object header at %#x: mt index %d", ref, idx))
	}
	return h.vm.types[idx]
}

// Valid performs a best-effort sanity check that ref addresses a live
// object header. It is used by checked public accessors, not by the
// collector's hot paths.
func (h *Heap) Valid(ref Ref) bool {
	off := uint32(ref)
	if ref == NullRef || off+HeaderSize > uint32(len(h.mem)) {
		return false
	}
	idx := h.mtIndex(ref)
	if idx == freeSentinel || int(idx) >= len(h.vm.types) {
		return false
	}
	sz := h.objSize(ref)
	return sz >= HeaderSize && off+sz <= uint32(len(h.mem))
}

// --- allocation ---------------------------------------------------------

// classAllocSize returns the total allocation size for a class.
func classAllocSize(mt *MethodTable) uint32 {
	return align8(HeaderSize + mt.InstanceSize)
}

// arrayAllocSize returns the total allocation size for an array with
// the given total element count and rank.
func arrayAllocSize(mt *MethodTable, length int) uint32 {
	data := uint32(length * mt.ElemSize())
	extra := uint32(0)
	if mt.Rank > 1 {
		extra = align8(uint32(4 * mt.Rank))
	}
	return align8(HeaderSize + extra + data)
}

// arrayDataOff returns the offset of element storage from the object
// start.
func arrayDataOff(mt *MethodTable) uint32 {
	if mt.Rank > 1 {
		return HeaderSize + align8(uint32(4*mt.Rank))
	}
	return HeaderSize
}

// AllocClass allocates a zeroed instance of mt. It may trigger a
// collection, so it must only be called from GC-safe points (the
// interpreter and FCall helpers guarantee this).
func (h *Heap) AllocClass(mt *MethodTable) (Ref, error) {
	if mt.Kind != TKClass {
		return NullRef, fmt.Errorf("vm: AllocClass on %s", mt)
	}
	ref, err := h.alloc(classAllocSize(mt))
	if err != nil {
		return NullRef, err
	}
	h.initHeader(ref, mt, 0)
	return ref, nil
}

// AllocArray allocates a zeroed rank-1 array of length elements.
func (h *Heap) AllocArray(mt *MethodTable, length int) (Ref, error) {
	if mt.Kind != TKArray || mt.Rank != 1 {
		return NullRef, fmt.Errorf("vm: AllocArray on %s", mt)
	}
	if length < 0 {
		return NullRef, fmt.Errorf("vm: negative array length %d", length)
	}
	ref, err := h.alloc(arrayAllocSize(mt, length))
	if err != nil {
		return NullRef, err
	}
	h.initHeader(ref, mt, uint32(length))
	return ref, nil
}

// AllocMultiDim allocates a true rectangular multidimensional array —
// the CLI array shape the paper calls out as important for scientific
// codes (§3). The dims are stored after the header; the data is one
// contiguous block in row-major order.
func (h *Heap) AllocMultiDim(mt *MethodTable, dims []int) (Ref, error) {
	if mt.Kind != TKArray || mt.Rank != len(dims) || mt.Rank < 2 {
		return NullRef, fmt.Errorf("vm: AllocMultiDim rank mismatch on %s (%d dims)", mt, len(dims))
	}
	total := 1
	for _, d := range dims {
		if d < 0 {
			return NullRef, fmt.Errorf("vm: negative dimension %d", d)
		}
		total *= d
	}
	ref, err := h.alloc(arrayAllocSize(mt, total))
	if err != nil {
		return NullRef, err
	}
	h.initHeader(ref, mt, uint32(total))
	for i, d := range dims {
		h.putU32(uint32(ref)+HeaderSize+uint32(4*i), uint32(d))
	}
	return ref, nil
}

func (h *Heap) initHeader(ref Ref, mt *MethodTable, length uint32) {
	off := uint32(ref)
	h.putU32(off+hdrMT, uint32(mt.Index))
	h.putU32(off+hdrFlags, 0)
	// size was written by alloc
	h.putU32(off+hdrLength, length)
}

// alloc obtains size bytes (already aligned) and writes the size word.
// Objects larger than half the nursery go straight to the elder space.
func (h *Heap) alloc(size uint32) (Ref, error) {
	if size < HeaderSize {
		size = HeaderSize
	}
	size = align8(size)
	if size > h.youngSize/2 {
		off, err := h.elderAlloc(size)
		if err != nil {
			return NullRef, err
		}
		h.putU32(off+hdrSize, size)
		return Ref(off), nil
	}
	if h.youngPos+size > h.youngEnd {
		h.vm.collect(false)
		if h.youngPos+size > h.youngEnd {
			// The nursery is still full: survivors were pinned and the
			// block donated but a new one could not be carved, or the
			// object simply does not fit. Fall back to the elder space.
			off, err := h.elderAlloc(size)
			if err != nil {
				return NullRef, err
			}
			h.putU32(off+hdrSize, size)
			return Ref(off), nil
		}
	}
	off := h.youngPos
	h.youngPos += size
	// Young space between collections is always zero (blocks are
	// carved from fresh arena or zeroed on reset).
	h.putU32(off+hdrSize, size)
	return Ref(off), nil
}

// elderAlloc allocates from the elder free lists, carving a new range
// or running a full collection when exhausted.
func (h *Heap) elderAlloc(size uint32) (uint32, error) {
	if h.sinceFull >= h.fullEvery && !h.inGC {
		h.vm.collect(true)
	}
	if off, ok := h.elderFit(size); ok {
		h.sinceFull += size
		return off, nil
	}
	// Carve a fresh range at least as large as the request.
	rangeSize := h.youngSize * 4
	if rangeSize < size+HeaderSize {
		rangeSize = align8(size + HeaderSize)
	}
	if start, err := h.carve(rangeSize); err == nil {
		h.addElderRange(start, start+rangeSize)
		if off, ok := h.elderFit(size); ok {
			h.sinceFull += size
			return off, nil
		}
	}
	// Arena exhausted: full collection, then one last attempt.
	if !h.inGC {
		h.vm.collect(true)
	}
	if off, ok := h.elderFit(size); ok {
		h.sinceFull += size
		return off, nil
	}
	return 0, ErrOutOfMemory
}

// elderFit finds a first-fit free block, splitting the remainder.
// Blocks that would leave a remainder too small to carry a free-block
// header are skipped entirely: every byte of an elder range must be
// described by some header so linear sweeps can walk it.
func (h *Heap) elderFit(size uint32) (uint32, bool) {
	for i := range h.freeList {
		fb := h.freeList[i]
		if fb.size < size {
			continue
		}
		rest := fb.size - size
		if rest > 0 && rest < HeaderSize {
			continue
		}
		if rest >= HeaderSize {
			h.freeList[i] = freeBlock{fb.off + size, rest}
			h.writeFreeBlock(fb.off+size, rest)
		} else { // exact fit
			h.freeList = append(h.freeList[:i], h.freeList[i+1:]...)
		}
		// Zero the block: elder memory is recycled and must present
		// the same all-zero guarantee as fresh young memory.
		clearBytes(h.mem[fb.off : fb.off+size])
		h.elderUsed += size
		return fb.off, true
	}
	return 0, false
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// --- pinning ------------------------------------------------------------

type pinEntry struct {
	ref   Ref
	count int
}

// Pin requests that the object at ref not be moved by the collector
// until a matching Unpin. Pins nest.
func (h *Heap) Pin(ref Ref) {
	if ref == NullRef {
		return
	}
	atomic.AddUint64(&h.Stats.Pins, 1)
	switch h.pinMode {
	case PinHandleTable:
		h.pinCounts[ref]++
	case PinLinearList:
		// SSCLI-profile: the pin list is kept unique by a linear scan
		// on every pin and unpin; this is the slow mechanism that
		// ablation A4 quantifies against the handle table.
		for i := range h.pinList {
			if h.pinList[i].ref == ref {
				h.pinList[i].count++
				return
			}
		}
		h.pinList = append(h.pinList, pinEntry{ref, 1})
	}
}

// Unpin releases one pin on ref.
func (h *Heap) Unpin(ref Ref) {
	if ref == NullRef {
		return
	}
	atomic.AddUint64(&h.Stats.Unpins, 1)
	switch h.pinMode {
	case PinHandleTable:
		if c := h.pinCounts[ref]; c > 1 {
			h.pinCounts[ref] = c - 1
		} else {
			delete(h.pinCounts, ref)
		}
	case PinLinearList:
		for i := range h.pinList {
			if h.pinList[i].ref == ref {
				if h.pinList[i].count > 1 {
					h.pinList[i].count--
				} else {
					h.pinList = append(h.pinList[:i], h.pinList[i+1:]...)
				}
				return
			}
		}
	}
}

// Pinned reports whether ref has at least one explicit pin.
func (h *Heap) Pinned(ref Ref) bool {
	switch h.pinMode {
	case PinHandleTable:
		return h.pinCounts[ref] > 0
	default:
		for _, p := range h.pinList {
			if p.ref == ref {
				return true
			}
		}
		return false
	}
}

// AddCondPin registers a conditional pin request: the object will be
// treated as pinned by any collection whose mark phase finds active()
// still true; the first mark phase that finds it false discards the
// request (paper §4.3, §7.4).
func (h *Heap) AddCondPin(ref Ref, active func() bool) {
	if ref == NullRef || active == nil {
		return
	}
	atomic.AddUint64(&h.Stats.CondPinsAdded, 1)
	h.condPins = append(h.condPins, CondPin{Ref: ref, Active: active})
}

// CondPinCount returns the number of outstanding conditional requests
// (for tests and stats).
func (h *Heap) CondPinCount() int { return len(h.condPins) }

// pinnedForCycle assembles the effective pin set for one collection:
// explicit pins plus conditional requests that are still active.
// Inactive conditional requests are dropped here — this is the mark-
// phase status check of §7.4.
func (h *Heap) pinnedForCycle() map[Ref]struct{} {
	set := make(map[Ref]struct{}, len(h.pinCounts)+len(h.pinList)+len(h.condPins))
	for r := range h.pinCounts {
		set[r] = struct{}{}
	}
	for _, p := range h.pinList {
		set[p.ref] = struct{}{}
	}
	tr := obs.Active()
	kept := h.condPins[:0]
	for _, cp := range h.condPins {
		if cp.Active() {
			set[cp.Ref] = struct{}{}
			kept = append(kept, cp)
			atomic.AddUint64(&h.Stats.CondPinsHeld, 1)
			if tr != nil {
				tr.Instant(h.vm.traceLane, obs.KCondPin, 1, uint64(cp.Ref))
			}
		} else {
			atomic.AddUint64(&h.Stats.CondPinsDropped, 1)
			if tr != nil {
				tr.Instant(h.vm.traceLane, obs.KCondPin, 0, uint64(cp.Ref))
			}
		}
	}
	h.condPins = kept
	return set
}

// --- write barrier ------------------------------------------------------

// recordWrite is the generational write barrier: storing a young ref
// into an elder object records the elder object in the remembered set
// so the next scavenge can treat its fields as roots.
func (h *Heap) recordWrite(obj Ref, val Ref) {
	if val == NullRef || obj == NullRef {
		return
	}
	if !h.IsYoung(obj) && h.IsYoung(val) {
		h.remembered[obj] = struct{}{}
	}
}

// MemUse reports arena occupancy for stats surfaces.
func (h *Heap) MemUse() (arena, youngUsed, elderUsed uint32) {
	return h.brk, h.youngPos - h.youngStart, h.elderUsed
}

// Workers reports the resolved gcworkers knob: 1 means the exact-
// legacy serial collector, >1 the modern parallel collector.
func (h *Heap) Workers() int { return h.gcWorkers }

// RequestCompaction asks the modern collector to slide-compact the
// elder space during its next full collection, bypassing the
// fragmentation heuristic. A no-op under the legacy collector, whose
// elder space is never compacted (§5.2).
func (h *Heap) RequestCompaction() { h.compactRequested = true }

// explicitPins assembles the unconditional pin set (Pin/Unpin
// bookkeeping only). The modern collector starts a cycle from this
// set and resolves conditional requests lazily through the cycle's
// single resolver; the legacy collector uses pinnedForCycle instead.
func (h *Heap) explicitPins() map[Ref]struct{} {
	set := make(map[Ref]struct{}, len(h.pinCounts)+len(h.pinList))
	for r := range h.pinCounts {
		set[r] = struct{}{}
	}
	for _, p := range h.pinList {
		set[p.ref] = struct{}{}
	}
	return set
}
