package vm

import (
	"bytes"
	"strings"
	"testing"
)

func assembleAndRun(t *testing.T, src string, args ...Value) (Value, *VM) {
	t.Helper()
	v := testVM()
	main, err := v.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if main == nil {
		t.Fatal("no main method")
	}
	var out Value
	v.WithThread("t", func(th *Thread) {
		r, err := th.Call(main, args...)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		out = r
	})
	return out, v
}

func TestMasmHello(t *testing.T) {
	src := `
.method main (0) int32
  ldc.i4 40
  ldc.i4 2
  add
  ret.val
.end
`
	out, _ := assembleAndRun(t, src)
	if out.Int() != 42 {
		t.Errorf("got %d", out.Int())
	}
}

func TestMasmLoopAndLabels(t *testing.T) {
	src := `
; sum of squares below n
.method main (1) int32
  .locals 2
  ldc.i4 0
  stloc 0            ; acc
  ldc.i4 0
  stloc 1            ; i
loop:
  ldloc 1  ldarg 0  clt
  brfalse done
  ldloc 0  ldloc 1  ldloc 1  mul  add  stloc 0
  ldloc 1  ldc.i4 1  add  stloc 1
  br loop
done:
  ldloc 0
  ret.val
.end
`
	out, _ := assembleAndRun(t, src, IntValue(5))
	if out.Int() != 0+1+4+9+16 {
		t.Errorf("got %d", out.Int())
	}
}

func TestMasmClassesAndTransportable(t *testing.T) {
	src := `
.class LinkedArray
  .field transportable int32[] array
  .field transportable LinkedArray next
  .field LinkedArray next2
.end

.method main (0) int32
  .locals 2
  newobj LinkedArray
  stloc 0
  ldc.i4 4
  newarr int32
  stloc 1
  ldloc 0  ldloc 1  stfld LinkedArray.array
  ldloc 0  newobj LinkedArray  stfld LinkedArray.next
  ldloc 0  ldfld LinkedArray.array  ldlen
  ret.val
.end
`
	out, v := assembleAndRun(t, src)
	if out.Int() != 4 {
		t.Errorf("got %d", out.Int())
	}
	mt, ok := v.TypeByName("LinkedArray")
	if !ok {
		t.Fatal("class not registered")
	}
	// The Transportable bit must match the paper's Fig. 5 example:
	// array and next are propagated; next2 is not.
	if !mt.FieldByName("array").Transportable() {
		t.Error("array not transportable")
	}
	if !mt.FieldByName("next").Transportable() {
		t.Error("next not transportable")
	}
	if mt.FieldByName("next2").Transportable() {
		t.Error("next2 should not be transportable")
	}
	tr := mt.TransportableRefs()
	if len(tr) != 2 {
		t.Errorf("transportable refs %d", len(tr))
	}
}

func TestMasmMethodsAndCalls(t *testing.T) {
	src := `
.method add3 (3) int32
  ldarg 0  ldarg 1  add  ldarg 2  add
  ret.val
.end

.method main (0) int32
  ldc.i4 1  ldc.i4 2  ldc.i4 3
  call add3
  ret.val
.end
`
	out, _ := assembleAndRun(t, src)
	if out.Int() != 6 {
		t.Errorf("got %d", out.Int())
	}
}

func TestMasmVirtualMethods(t *testing.T) {
	src := `
.class Shape
  .method virtual area (0) int32
    ldc.i4 0
    ret.val
  .end
.end

.class Square extends Shape
  .field int32 side
  .method virtual area (0) int32
    ldarg 0  ldfld Square.side
    ldarg 0  ldfld Square.side
    mul
    ret.val
  .end
.end

.method main (0) int32
  .locals 1
  newobj Square
  stloc 0
  ldloc 0  ldc.i4 9  stfld Square.side
  ldloc 0
  callvirt Shape.area
  ret.val
.end
`
	out, _ := assembleAndRun(t, src)
	if out.Int() != 81 {
		t.Errorf("got %d", out.Int())
	}
}

func TestMasmGlobals(t *testing.T) {
	src := `
.global total

.method bump (1) void
  ldsfld total  ldarg 0  add  stsfld total
  ret
.end

.method main (0) int32
  ldc.i4 10  call bump
  ldc.i4 32  call bump
  ldsfld total
  ret.val
.end
`
	out, _ := assembleAndRun(t, src)
	if out.Int() != 42 {
		t.Errorf("got %d", out.Int())
	}
}

func TestMasmConsoleIntern(t *testing.T) {
	var buf bytes.Buffer
	v := New(Config{Stdout: &buf, Heap: HeapConfig{YoungSize: 64 << 10, InitialElder: 256 << 10, ArenaMax: 16 << 20}})
	main, err := v.Assemble(`
.method main (0) void
  ldc.i4 123
  intern console.writei
  intern console.newline
  ret
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	v.WithThread("t", func(th *Thread) {
		if _, err := th.Call(main); err != nil {
			t.Fatal(err)
		}
	})
	if got := buf.String(); got != "123\n" {
		t.Errorf("output %q", got)
	}
}

func TestMasmErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown instruction", ".method main (0) void\n  frobnicate\n.end", "unknown instruction"},
		{"undefined label", ".method main (0) void\n  br nowhere\n.end", "undefined label"},
		{"unknown type", ".method main (0) void\n  newobj Ghost\n.end", "unknown type"},
		{"unknown field", ".class C\n.end\n.method main (0) void\n  ldnull\n  ldfld C.missing\n.end", "no field"},
		{"missing end", ".method main (0) void\n  ret", ".method without .end"},
		{"bad class header", ".class\n.end", ".class NAME"},
		{"unknown global", ".method main (0) void\n  ldsfld nope\n.end", "unknown global"},
		{"unknown method", ".method main (0) void\n  call nope\n.end", "unknown method"},
		{"duplicate class", ".class C\n.end\n.class C\n.end", "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := testVM()
			_, err := v.Assemble(tc.src)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestMasmFieldTypes(t *testing.T) {
	src := `
.class Kitchen
  .field bool hot
  .field uint8 b
  .field int16 s
  .field char c
  .field float32 f
  .field float64 d
  .field object any
  .field float64[] vec
  .field float64[][] mat
.end

.method main (0) int32
  ldc.i4 0
  ret.val
.end
`
	_, v := assembleAndRun(t, src)
	mt, _ := v.TypeByName("Kitchen")
	checks := map[string]Kind{
		"hot": KindBool, "b": KindUint8, "s": KindInt16, "c": KindChar,
		"f": KindFloat32, "d": KindFloat64, "any": KindRef, "vec": KindRef, "mat": KindRef,
	}
	for name, want := range checks {
		f := mt.FieldByName(name)
		if f == nil {
			t.Fatalf("missing field %s", name)
		}
		if f.Kind() != want {
			t.Errorf("field %s kind %s, want %s", name, f.Kind(), want)
		}
	}
	if mt.FieldByName("vec").DeclaredType == nil || !mt.FieldByName("vec").DeclaredType.IsArray() {
		t.Error("vec declared type not an array")
	}
}

func TestMasmGCDuringManagedCode(t *testing.T) {
	src := `
; allocate garbage in a loop, forcing collections, while holding a
; live linked structure in a local.
.class Cell
  .field Cell next
  .field int32 v
.end

.method main (0) int32
  .locals 3
  newobj Cell
  stloc 0
  ldloc 0  ldc.i4 77  stfld Cell.v
  ldc.i4 200
  stloc 1
loop:
  ldloc 1  brfalse done
  ldc.i4 512  newarr int64  pop
  newobj Cell  stloc 2
  ldloc 2  ldloc 0  stfld Cell.next
  ldloc 2  stloc 0
  ldloc 1  ldc.i4 1  sub  stloc 1
  br loop
done:
  ; walk to the tail and read v
walk:
  ldloc 0  ldfld Cell.next  ldnull  ceq  brtrue read
  ldloc 0  ldfld Cell.next  stloc 0
  br walk
read:
  ldloc 0  ldfld Cell.v
  ret.val
.end
`
	v := New(Config{Heap: HeapConfig{YoungSize: 16 << 10, InitialElder: 128 << 10, ArenaMax: 64 << 20}})
	main, err := v.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var out Value
	v.WithThread("t", func(th *Thread) {
		r, err := th.Call(main)
		if err != nil {
			t.Fatal(err)
		}
		out = r
	})
	if out.Int() != 77 {
		t.Errorf("tail v = %d", out.Int())
	}
	if v.Heap.Stats.Scavenges == 0 {
		t.Error("no collections; test ineffective")
	}
}

func TestMasmStaticClassMethod(t *testing.T) {
	src := `
.class MathUtil
  .method square (1) int32
    ldarg 0  ldarg 0  mul
    ret.val
  .end
.end

.method main (0) int32
  ldc.i4 9
  call MathUtil.square
  ret.val
.end
`
	out, _ := assembleAndRun(t, src)
	if out.Int() != 81 {
		t.Errorf("got %d", out.Int())
	}
}

func TestMasmInheritedFieldsAccessible(t *testing.T) {
	src := `
.class Base
  .field int32 a
.end
.class Derived extends Base
  .field int32 b
.end

.method main (0) int32
  .locals 1
  newobj Derived
  stloc 0
  ldloc 0  ldc.i4 30  stfld Base.a
  ldloc 0  ldc.i4 12  stfld Derived.b
  ldloc 0  ldfld Derived.a       ; inherited field via derived type
  ldloc 0  ldfld Derived.b
  add
  ret.val
.end
`
	out, _ := assembleAndRun(t, src)
	if out.Int() != 42 {
		t.Errorf("got %d", out.Int())
	}
}

func TestMasmMutuallyRecursiveMethods(t *testing.T) {
	// isEven/isOdd mutual recursion: forward method references work.
	src := `
.method isEven (1) int32
  ldarg 0  brfalse yes
  ldarg 0  ldc.i4 1  sub
  call isOdd
  ret.val
yes:
  ldc.i4 1
  ret.val
.end

.method isOdd (1) int32
  ldarg 0  brfalse no
  ldarg 0  ldc.i4 1  sub
  call isEven
  ret.val
no:
  ldc.i4 0
  ret.val
.end

.method main (0) int32
  ldc.i4 10  call isEven        ; 1
  ldc.i4 7   call isOdd         ; 1
  add
  ret.val
.end
`
	out, _ := assembleAndRun(t, src)
	if out.Int() != 2 {
		t.Errorf("got %d", out.Int())
	}
}
