package vm

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// The text assembler: a small portable assembly format (".masm") so
// Motor programs can be shipped as text and executed unchanged on any
// host — the compile-once-run-anywhere deployment story of the paper.
//
// Syntax overview (';' starts a comment):
//
//	.class LinkedArray
//	  .field transportable int32[] array
//	  .field transportable LinkedArray next
//	  .field LinkedArray next2
//	.end
//
//	.global counter
//
//	.method main (0) void
//	  .locals 2
//	  ldc.i4 42
//	  stloc 0
//	loop:
//	  ldloc 0
//	  brfalse done
//	  ldloc 0  ldc.i4 1  sub  stloc 0
//	  br loop
//	done:
//	  ret
//	.end
//
// Field types are primitive kind names, class names, or either with a
// trailing "[]" (an array-typed reference field). The "transportable"
// modifier sets the Transportable bit used by the extended object-
// oriented transport operations (paper §4.2.2).

// AsmError reports an assembly failure with its line number.
type AsmError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *AsmError) Error() string { return fmt.Sprintf("masm: line %d: %s", e.Line, e.Msg) }

type asmLine struct {
	num    int
	tokens []string
}

type asmFieldDecl struct {
	name          string
	typeName      string
	transportable bool
	line          int
}

type asmClassDecl struct {
	name    string
	parent  string
	fields  []asmFieldDecl
	line    int
	methods []*asmMethodDecl
}

type asmMethodDecl struct {
	name    string
	owner   string // class name, "" for module-level
	nargs   int
	nlocals int
	hasRet  bool
	retType string
	virtual bool
	body    []asmLine
	line    int
}

// Module is the result of assembling one masm source unit: every
// method it registered (in declaration order, module-level first,
// then per-class) and the entry method when one is named "main".
// Load-time verification runs over Methods.
type Module struct {
	Methods []*Method
	Main    *Method
}

// Assemble parses masm source and registers its classes, globals and
// methods on the VM. It returns the module's entry method (named
// "main") when present.
func (v *VM) Assemble(src string) (*Method, error) {
	mod, err := v.AssembleModule(src)
	if err != nil {
		return nil, err
	}
	return mod.Main, nil
}

// AssembleModule is Assemble returning the full module, so callers
// (Rank.Load, cmd/motor -check) can hand every method to the
// verifier, not just main. A failed assembly rolls the VM's registries
// back to their pre-call state, so a rejected source unit leaves no
// half-registered classes, globals or methods behind.
func (v *VM) AssembleModule(src string) (mod *Module, err error) {
	mark := v.Mark()
	defer func() {
		if err != nil {
			v.RollbackRegistry(mark)
		}
	}()
	lines, err := lexMasm(src)
	if err != nil {
		return nil, err
	}

	var classes []*asmClassDecl
	var methods []*asmMethodDecl
	var globals []string

	// Pass 1: structure.
	i := 0
	for i < len(lines) {
		ln := lines[i]
		switch ln.tokens[0] {
		case ".class":
			cd, next, err := parseClass(lines, i)
			if err != nil {
				return nil, err
			}
			classes = append(classes, cd)
			i = next
		case ".global":
			if len(ln.tokens) != 2 {
				return nil, &AsmError{ln.num, ".global expects a name"}
			}
			globals = append(globals, ln.tokens[1])
			i++
		case ".method":
			md, next, err := parseMethod(lines, i, "")
			if err != nil {
				return nil, err
			}
			methods = append(methods, md)
			i = next
		default:
			return nil, &AsmError{ln.num, "expected .class, .global or .method, got " + ln.tokens[0]}
		}
	}

	// Register class shells first so fields may reference any class in
	// the module (including self-references like LinkedArray.next),
	// then lay out each class in declaration order (parents first).
	shells := make(map[string]*MethodTable, len(classes))
	for _, cd := range classes {
		mt, err := v.DeclareClass(cd.name)
		if err != nil {
			return nil, &AsmError{cd.line, err.Error()}
		}
		shells[cd.name] = mt
	}
	for _, cd := range classes {
		var parent *MethodTable
		if cd.parent != "" {
			p, ok := v.TypeByName(cd.parent)
			if !ok {
				return nil, &AsmError{cd.line, "unknown parent class " + cd.parent}
			}
			parent = p
		}
		specs := make([]FieldSpec, 0, len(cd.fields))
		for _, fd := range cd.fields {
			spec, err := v.resolveFieldType(fd)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
		if err := v.CompleteClass(shells[cd.name], parent, specs); err != nil {
			return nil, &AsmError{cd.line, err.Error()}
		}
		methods = append(methods, cd.methods...)
	}

	for _, g := range globals {
		v.AddGlobal(g)
	}

	// Register method shells so call operands resolve regardless of
	// declaration order.
	built := make([]*Method, len(methods))
	for idx, md := range methods {
		m := &Method{
			Name:    md.name,
			NArgs:   md.nargs,
			NLocals: md.nlocals,
			HasRet:  md.hasRet,
			Virtual: md.virtual,
		}
		if md.hasRet {
			kind, class, err := v.resolveRetType(md)
			if err != nil {
				return nil, err
			}
			m.RetKind, m.RetClass = kind, class
		}
		var owner *MethodTable
		if md.owner != "" {
			o, ok := v.TypeByName(md.owner)
			if !ok {
				return nil, &AsmError{md.line, "unknown class " + md.owner}
			}
			owner = o
		}
		v.AddMethod(owner, m)
		built[idx] = m
	}

	// Pass 2: bodies.
	for idx, md := range methods {
		code, lineTab, err := v.assembleBody(md)
		if err != nil {
			return nil, err
		}
		built[idx].Code = code
		built[idx].Lines = lineTab
	}

	mod = &Module{Methods: built}
	if m, ok := v.MethodByName("main"); ok {
		mod.Main = m
	}
	return mod, nil
}

// resolveRetType maps a .method return-type token to a Kind (and the
// declared class for reference results). Called after class shells are
// registered, so methods may return module classes and arrays.
func (v *VM) resolveRetType(md *asmMethodDecl) (Kind, *MethodTable, error) {
	tn := md.retType
	if k, ok := KindByName(tn); ok && k != KindVoid {
		return k, nil, nil
	}
	if tn == "object" {
		return KindRef, nil, nil
	}
	mt, err := v.resolveTypeToken(tn, md.line)
	if err != nil {
		return KindVoid, nil, &AsmError{md.line, "unknown return type " + tn}
	}
	return KindRef, mt, nil
}

func lexMasm(src string) ([]asmLine, error) {
	var out []asmLine
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	num := 0
	for sc.Scan() {
		num++
		line := sc.Text()
		if j := strings.IndexByte(line, ';'); j >= 0 {
			line = line[:j]
		}
		tokens := strings.Fields(line)
		if len(tokens) == 0 {
			continue
		}
		out = append(out, asmLine{num: num, tokens: tokens})
	}
	return out, sc.Err()
}

func parseClass(lines []asmLine, i int) (*asmClassDecl, int, error) {
	ln := lines[i]
	cd := &asmClassDecl{line: ln.num}
	switch len(ln.tokens) {
	case 2:
		cd.name = ln.tokens[1]
	case 4:
		if ln.tokens[2] != "extends" {
			return nil, 0, &AsmError{ln.num, ".class NAME [extends PARENT]"}
		}
		cd.name, cd.parent = ln.tokens[1], ln.tokens[3]
	default:
		return nil, 0, &AsmError{ln.num, ".class NAME [extends PARENT]"}
	}
	i++
	for i < len(lines) {
		ln = lines[i]
		switch ln.tokens[0] {
		case ".end":
			return cd, i + 1, nil
		case ".field":
			toks := ln.tokens[1:]
			fd := asmFieldDecl{line: ln.num}
			if len(toks) > 0 && toks[0] == "transportable" {
				fd.transportable = true
				toks = toks[1:]
			}
			if len(toks) != 2 {
				return nil, 0, &AsmError{ln.num, ".field [transportable] TYPE NAME"}
			}
			fd.typeName, fd.name = toks[0], toks[1]
			cd.fields = append(cd.fields, fd)
			i++
		case ".method":
			md, next, err := parseMethod(lines, i, cd.name)
			if err != nil {
				return nil, 0, err
			}
			cd.methods = append(cd.methods, md)
			i = next
		default:
			return nil, 0, &AsmError{ln.num, "unexpected " + ln.tokens[0] + " in .class"}
		}
	}
	return nil, 0, &AsmError{cd.line, ".class without .end"}
}

func parseMethod(lines []asmLine, i int, owner string) (*asmMethodDecl, int, error) {
	ln := lines[i]
	toks := ln.tokens[1:]
	md := &asmMethodDecl{line: ln.num, owner: owner}
	if len(toks) > 0 && toks[0] == "virtual" {
		md.virtual = true
		toks = toks[1:]
	}
	if len(toks) != 3 {
		return nil, 0, &AsmError{ln.num, ".method [virtual] NAME (NARGS) RETTYPE"}
	}
	md.name = toks[0]
	argStr := strings.Trim(toks[1], "()")
	n, err := strconv.Atoi(argStr)
	if err != nil || n < 0 || n > maxFrameSlots {
		return nil, 0, &AsmError{ln.num, "bad argument count " + toks[1]}
	}
	md.nargs = n
	if md.virtual {
		md.nargs++ // implicit receiver
	}
	md.retType = toks[2]
	md.hasRet = toks[2] != "void"
	i++
	for i < len(lines) {
		ln = lines[i]
		if ln.tokens[0] == ".end" {
			return md, i + 1, nil
		}
		if ln.tokens[0] == ".locals" {
			if len(ln.tokens) != 2 {
				return nil, 0, &AsmError{ln.num, ".locals N"}
			}
			nl, err := strconv.Atoi(ln.tokens[1])
			if err != nil || nl < 0 || nl > maxFrameSlots {
				return nil, 0, &AsmError{ln.num, "bad locals count"}
			}
			md.nlocals = nl
			i++
			continue
		}
		md.body = append(md.body, ln)
		i++
	}
	return nil, 0, &AsmError{md.line, ".method without .end"}
}

// resolveFieldType maps a masm type token to a FieldSpec.
func (v *VM) resolveFieldType(fd asmFieldDecl) (FieldSpec, error) {
	spec := FieldSpec{Name: fd.name, Transportable: fd.transportable}
	tn := fd.typeName
	if strings.ContainsRune(tn, '[') {
		mt, err := v.ResolveTypeName(tn)
		if err != nil {
			return spec, &AsmError{fd.line, err.Error()}
		}
		spec.Kind = KindRef
		spec.Type = mt
		return spec, nil
	}
	if k, ok := KindByName(tn); ok && k != KindVoid {
		spec.Kind = k
		return spec, nil
	}
	if tn == "object" {
		spec.Kind = KindRef
		return spec, nil
	}
	if mt, ok := v.TypeByName(tn); ok {
		spec.Kind = KindRef
		spec.Type = mt
		return spec, nil
	}
	return spec, &AsmError{fd.line, "unknown field type " + tn}
}

// resolveTypeToken maps a masm type token (for newobj/newarr) to a
// method table. Array suffixes follow the CLI convention: T[] is a
// vector, T[,] a rank-2 rectangular array, T[][] a jagged array.
func (v *VM) resolveTypeToken(tok string, line int) (*MethodTable, error) {
	if strings.ContainsRune(tok, '[') {
		mt, err := v.ResolveTypeName(tok)
		if err != nil {
			return nil, &AsmError{line, err.Error()}
		}
		return mt, nil
	}
	if mt, ok := v.TypeByName(tok); ok {
		return mt, nil
	}
	return nil, &AsmError{line, "unknown type " + tok}
}

// maxFrameSlots bounds .locals and argument counts: frame slots are
// addressed by u16 operands, and the bound keeps hostile modules from
// demanding unbounded frame allocations before verification.
const maxFrameSlots = 0xFFFF

func (v *VM) assembleBody(md *asmMethodDecl) ([]byte, []LineEntry, error) {
	b := NewCodeBuilder()
	for _, ln := range md.body {
		toks := ln.tokens
		b.MarkLine(ln.num)
		// Allow several instructions per line; labels end with ':'.
		for len(toks) > 0 {
			tok := toks[0]
			toks = toks[1:]
			if strings.HasSuffix(tok, ":") {
				b.Label(strings.TrimSuffix(tok, ":"))
				continue
			}
			op, ok := opByName[tok]
			if !ok {
				return nil, nil, &AsmError{ln.num, "unknown instruction " + tok}
			}
			need := operandCount(op)
			if len(toks) < need {
				return nil, nil, &AsmError{ln.num, tok + " missing operand"}
			}
			var operand string
			if need == 1 {
				operand = toks[0]
				toks = toks[1:]
			}
			if err := v.emit(b, op, operand, ln.num); err != nil {
				return nil, nil, err
			}
		}
	}
	if b.err != nil {
		return nil, nil, &AsmError{md.line, b.err.Error()}
	}
	for _, fx := range b.fixups {
		if _, ok := b.labels[fx.label]; !ok {
			return nil, nil, &AsmError{md.line, "undefined label " + fx.label}
		}
	}
	m := b.Build(md.name, md.nargs, md.nlocals, md.hasRet)
	return m.Code, m.Lines, nil
}

func operandCount(op Op) int {
	if opTable[op].width == wNone {
		return 0
	}
	return 1
}

func (v *VM) emit(b *CodeBuilder, op Op, operand string, line int) error {
	switch op {
	case OpLdcI4:
		n, err := strconv.ParseInt(operand, 0, 32)
		if err != nil {
			return &AsmError{line, "bad int32 " + operand}
		}
		b.LdcI4(int32(n))
	case OpLdcI8:
		n, err := strconv.ParseInt(operand, 0, 64)
		if err != nil {
			return &AsmError{line, "bad int64 " + operand}
		}
		b.LdcI8(n)
	case OpLdcR8:
		f, err := strconv.ParseFloat(operand, 64)
		if err != nil {
			return &AsmError{line, "bad float " + operand}
		}
		b.LdcR8(f)
	case OpLdLoc, OpStLoc, OpLdArg, OpStArg:
		n, err := strconv.Atoi(operand)
		if err != nil || n < 0 {
			return &AsmError{line, "bad slot index " + operand}
		}
		b.U16(op, n)
	case OpBr, OpBrTrue, OpBrFalse:
		b.branch(op, operand)
	case OpCall, OpCallVirt:
		m, err := v.resolveMethodToken(operand, line)
		if err != nil {
			return err
		}
		b.U16(op, m.Index)
	case OpIntern:
		idx, ok := v.InternalIndex(operand)
		if !ok {
			return &AsmError{line, "unknown internal call " + operand}
		}
		b.U16(op, idx)
	case OpNewObj:
		mt, err := v.resolveTypeToken(operand, line)
		if err != nil {
			return err
		}
		b.U16(op, mt.Index)
	case OpNewMD:
		// "newmd T[,]" (or deeper): the operand names the full
		// multidimensional array type; dimension sizes are popped.
		mt, err := v.resolveTypeToken(operand, line)
		if err != nil {
			return err
		}
		if mt.Kind != TKArray || mt.Rank < 2 {
			return &AsmError{line, "newmd requires a multidimensional array type like float64[,]"}
		}
		b.U16(op, mt.Index)
	case OpNewArr:
		// "newarr T" allocates a T[] (the operand is the element type).
		var mt *MethodTable
		if k, ok := KindByName(operand); ok && k != KindVoid {
			mt = v.ArrayType(k, nil, 1)
		} else {
			elem, err := v.resolveTypeToken(operand, line)
			if err != nil {
				return err
			}
			mt = v.ArrayType(KindRef, elem, 1)
		}
		b.U16(op, mt.Index)
	case OpLdFld, OpStFld:
		typeName, fieldName, ok := splitDot(operand)
		if !ok {
			return &AsmError{line, "field operand must be Type.field"}
		}
		mt, found := v.TypeByName(typeName)
		if !found {
			return &AsmError{line, "unknown type " + typeName}
		}
		i := mt.FieldIndex(fieldName)
		if i < 0 {
			return &AsmError{line, "no field " + operand}
		}
		b.U16(op, i)
	case OpLdSFld, OpStSFld:
		i, ok := v.GlobalIndex(operand)
		if !ok {
			return &AsmError{line, "unknown global " + operand}
		}
		b.U16(op, i)
	default:
		b.Op(op)
	}
	return nil
}

func (v *VM) resolveMethodToken(tok string, line int) (*Method, error) {
	if typeName, methodName, ok := splitDot(tok); ok {
		mt, found := v.TypeByName(typeName)
		if !found {
			return nil, &AsmError{line, "unknown type " + typeName}
		}
		if m := mt.MethodByName(methodName); m != nil {
			return m, nil
		}
		// Search parents for inherited methods.
		for p := mt.Parent; p != nil; p = p.Parent {
			if m := p.MethodByName(methodName); m != nil {
				return m, nil
			}
		}
		return nil, &AsmError{line, "unknown method " + tok}
	}
	if m, ok := v.MethodByName(tok); ok {
		return m, nil
	}
	return nil, &AsmError{line, "unknown method " + tok}
}

func splitDot(s string) (string, string, bool) {
	i := strings.LastIndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}
