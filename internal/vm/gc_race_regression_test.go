package vm

// TestStressCondPinMidMarkResolution is the deterministic regression
// for the §5.3/§7.4 hazard the parallel collector must not
// reintroduce: a conditional pin whose outcome is decided by an
// in-flight transport operation that COMPLETES while the mark pool is
// running. The single-resolver discipline in gcpar.go claims each
// request exactly once per cycle; a racy collector would either
// evaluate Active() twice (double-counting the §7.4 examination) or
// cache a stale answer from before the completion landed.
//
// The test makes the race window deterministic instead of
// probabilistic: the instrumented Active() blocks on a handshake with
// a "completion" goroutine, which flips the request's state while the
// resolver is inside the call — the completion provably arrives
// mid-resolution, mid-cycle, from outside the collector. The worker
// thread that registered the pin is parked the whole time, so the
// request arrives from a parked thread exactly as in the
// polling-wait protocol.
//
// Asserted per cycle: Active() ran exactly once, the recorded
// decision matches the post-completion state, and h.condPins carries
// the pin forward iff it was held. Asserted at the end: GCStats
// held/dropped totals, and the KCondPin trace instants carry the
// correct decisions for the target ref (the PR 3 correlation the
// parallel collector must preserve).
//
// Run under -race via the stress tier (scripts/verify.sh stress).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"motor/internal/obs"
)

func TestStressCondPinMidMarkResolution(t *testing.T) {
	tr := obs.Start(obs.Options{})
	if tr != nil {
		defer obs.Stop(tr)
	}

	v := New(Config{Heap: HeapConfig{
		YoungSize: 16 << 10, InitialElder: 256 << 10, ArenaMax: 64 << 20, GCWorkers: 4,
	}})
	if v.Heap.Workers() < 2 {
		t.Fatal("modern collector not selected")
	}
	node := nodeClass(v)
	fID := node.FieldByName("id")

	const rounds = 8
	held := func(r int) bool { return r%2 == 0 }

	calls := make([]int32, rounds) // Active() invocations per round's pin
	var state int32                // the in-flight operation's completion state
	armCh := make(chan int)        // resolver reached round r's Active()
	fireCh := make(chan struct{})  // completion has landed, resolver may decide
	stopCh := make(chan struct{})
	reqCh := make(chan struct{})
	doneCh := make(chan struct{})
	errs := make(chan error, 2)
	var wg sync.WaitGroup

	// The "transport completion": flips the request's state only once
	// the resolver is provably inside Active(), i.e. mid-cycle. Not in
	// the WaitGroup — it is released by stopCh after the threads join.
	go func() {
		for {
			select {
			case r := <-armCh:
				if held(r) {
					atomic.StoreInt32(&state, 1)
				} else {
					atomic.StoreInt32(&state, 0)
				}
				fireCh <- struct{}{}
			case <-stopCh:
				return
			}
		}
	}()

	// Worker: owns the target, registers one cond pin per round, and
	// parks across the sibling's full collection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(reqCh)
		th := v.StartThread("worker")
		defer th.End()

		target, err := v.Heap.AllocClass(node)
		if err != nil {
			errs <- err
			return
		}
		v.Heap.SetScalar(target, fID, 42)
		pop := th.PushFrame(&target)
		defer pop()
		th.CollectFull() // promote: mark-phase resolution needs an elder target
		if v.Heap.IsYoung(target) {
			errs <- fmt.Errorf("target not promoted to elder space")
			return
		}
		addr := target

		for r := 0; r < rounds; r++ {
			r := r
			v.Heap.AddCondPin(target, func() bool {
				if atomic.AddInt32(&calls[r], 1) > 1 {
					// A held pin is re-examined on the NEXT cycle;
					// release it quietly there. A same-cycle second
					// call lands here too — caught by the counter.
					return false
				}
				armCh <- r
				<-fireCh
				return atomic.LoadInt32(&state) == 1
			})
			before := v.Heap.Stats.Snapshot()
			th.Park(func() {
				reqCh <- struct{}{}
				<-doneCh
			})
			after := v.Heap.Stats.Snapshot()

			if n := atomic.LoadInt32(&calls[r]); n != 1 {
				errs <- fmt.Errorf("round %d: Active() ran %d times in its arrival cycle, want exactly 1", r, n)
				return
			}
			wantCount, wantHeld := 0, uint64(0)
			if held(r) {
				wantCount, wantHeld = 1, 1
			}
			if got := v.Heap.CondPinCount(); got != wantCount {
				errs <- fmt.Errorf("round %d: %d cond pins survive the cycle, want %d", r, got, wantCount)
				return
			}
			if d := after.CondPinsHeld - before.CondPinsHeld; d != wantHeld {
				errs <- fmt.Errorf("round %d: held delta %d, want %d", r, d, wantHeld)
				return
			}
			if target != addr || !v.Heap.Valid(target) || v.Heap.GetScalar(target, fID) != 42 {
				errs <- fmt.Errorf("round %d: target moved or corrupted", r)
				return
			}
		}
		// One trailing cycle releases the final held pin quietly.
		th.Park(func() {
			reqCh <- struct{}{}
			<-doneCh
		})
		if got := v.Heap.CondPinCount(); got != 0 {
			errs <- fmt.Errorf("trailing cycle left %d cond pins", got)
			return
		}
		errs <- nil
	}()

	// Sibling: full-collects on request while the worker is parked.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := v.StartThread("sibling")
		defer th.End()
		for {
			ok := false
			th.Park(func() { _, ok = <-reqCh })
			if !ok {
				errs <- nil
				return
			}
			th.CollectFull()
			th.Park(func() { doneCh <- struct{}{} })
		}
	}()

	wg.Wait()
	close(stopCh)
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	heldRounds := 0
	for r := 0; r < rounds; r++ {
		if held(r) {
			heldRounds++
		}
	}
	gs := v.Heap.Stats.Snapshot()
	if gs.CondPinsHeld != uint64(heldRounds) {
		t.Errorf("CondPinsHeld = %d, want %d", gs.CondPinsHeld, heldRounds)
	}
	// Every dropped round plus every held pin's quiet release.
	wantDropped := uint64(rounds - heldRounds + heldRounds)
	if gs.CondPinsDropped != wantDropped {
		t.Errorf("CondPinsDropped = %d, want %d", gs.CondPinsDropped, wantDropped)
	}

	if tr != nil {
		var heldInst, droppedInst int
		for _, ev := range tr.Events() {
			if ev.Kind != obs.KCondPin {
				continue
			}
			if ev.Arg0 == 1 {
				heldInst++
			} else {
				droppedInst++
			}
		}
		if heldInst != heldRounds || droppedInst != int(wantDropped) {
			t.Errorf("trace recorded %d held / %d dropped cond-pin instants, want %d / %d",
				heldInst, droppedInst, heldRounds, wantDropped)
		}
	}
}
