package vm

import (
	"errors"
	"testing"
)

// Regression tests for the interpreter's malformed-bytecode hardening:
// unverified code that underflows the operand stack, indexes frame
// slots out of range, or truncates an operand must surface as a typed
// *Trap from Thread.Call — never as a Go panic that kills the host.

func callExpectTrap(t *testing.T, v *VM, m *Method, kind string) {
	t.Helper()
	v.WithThread("t", func(th *Thread) {
		_, err := th.Call(m)
		if err == nil {
			t.Fatalf("%s: expected a trap, got success", m.FullName())
		}
		var trap *Trap
		if !errors.As(err, &trap) {
			t.Fatalf("%s: error %v (%T) is not a *Trap", m.FullName(), err, err)
		}
		if trap.Kind != kind {
			t.Fatalf("%s: trap kind = %q, want %q (%v)", m.FullName(), trap.Kind, kind, trap)
		}
	})
}

func TestTrapOnStackUnderflow(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, &Method{Name: "underflow", Code: []byte{byte(OpAdd), byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}

func TestTrapOnLocalOutOfRange(t *testing.T) {
	v := testVM()
	// ldloc 5 with zero locals.
	m := v.AddMethod(nil, &Method{Name: "badlocal", Code: []byte{byte(OpLdLoc), 5, 0, byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}

func TestTrapOnTruncatedOperand(t *testing.T) {
	v := testVM()
	// ldc.i4 needs 4 operand bytes; provide one.
	m := v.AddMethod(nil, &Method{Name: "truncated", Code: []byte{byte(OpLdcI4), 1}})
	callExpectTrap(t, v, m, "invalid program")
}

func TestTrapOnUndefinedOpcode(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, &Method{Name: "badop", Code: []byte{0xEE}})
	callExpectTrap(t, v, m, "bad opcode")
}

func TestTrapOnArgOutOfRange(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, &Method{Name: "badarg", Code: []byte{byte(OpLdArg), 3, 0, byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}

// TestHostFCallPanicEscapes: a Go runtime error raised inside a host
// FCall implementation is a bug in engine/host code, not malformed
// bytecode. It must escape Thread.Call as a panic so it crashes loudly
// instead of being converted into an "invalid program" trap that
// blames the guest.
func TestHostFCallPanicEscapes(t *testing.T) {
	v := testVM()
	idx := v.RegisterInternal(InternalFunc{
		Name:  "test.crash",
		NArgs: 0,
		Fn: func(th *Thread, args []Value) (Value, error) {
			var m map[string]int
			m["boom"] = 1 // nil map write: a genuine runtime.Error
			return Value{}, nil
		},
	})
	m := v.AddMethod(nil, &Method{Name: "crasher",
		Code: []byte{byte(OpIntern), byte(idx), byte(idx >> 8), byte(OpRet)}})
	v.WithThread("t", func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("host FCall runtime error was swallowed, want it to escape as a panic")
			}
		}()
		_, _ = th.Call(m)
	})
}

// --- fused-superinstruction trap attribution -------------------------------
//
// Quickened superinstructions cover several bytecode offsets; a trap
// raised by a fused component must report the component's own pc (and
// therefore its own masm line via LineForPC), exactly as the baseline
// loop would. Each test runs the method quickened, then unquickened,
// and demands field-identical *Trap values.

// trapBoth executes m on both engines and returns the (identical)
// trap, failing the test on any divergence.
func trapBoth(t *testing.T, v *VM, m *Method, args ...Value) *Trap {
	t.Helper()
	if !m.Quickened() {
		t.Fatalf("%s: not quickened", m.FullName())
	}
	var qerr, berr error
	v.WithThread("quick", func(th *Thread) { _, qerr = th.Call(m, args...) })
	quick := m.quick
	m.Unquicken()
	v.WithThread("base", func(th *Thread) { _, berr = th.Call(m, args...) })
	m.quick = quick
	var qt, bt *Trap
	if !errors.As(qerr, &qt) {
		t.Fatalf("%s: quickened error %v is not a trap", m.FullName(), qerr)
	}
	if !errors.As(berr, &bt) {
		t.Fatalf("%s: baseline error %v is not a trap", m.FullName(), berr)
	}
	if *qt != *bt {
		t.Fatalf("%s: quickened trap %+v != baseline trap %+v", m.FullName(), *qt, *bt)
	}
	return qt
}

// TestFusedLdLocFldTrapAttribution: a null receiver inside the fused
// ldloc+ldfld superinstruction reports the ldfld's pc and line — the
// second component faults, not the fusion head.
func TestFusedLdLocFldTrapAttribution(t *testing.T) {
	v := testVM()
	pt := pointClass(v)
	m := v.AddMethod(nil, NewCodeBuilder().
		MarkLine(1).LdNull().StLoc(0).
		MarkLine(2).LdLoc(0).
		MarkLine(3).LdFld(pt, "x").
		MarkLine(4).RetVal().
		Build("nullfld", 0, 1, true))
	m.Verified = true
	info, err := v.QuickenMethod(m)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fused == 0 {
		t.Fatal("ldloc+ldfld did not fuse")
	}
	trap := trapBoth(t, v, m)
	if trap.Kind != "null reference" || trap.Detail != "ldfld" {
		t.Fatalf("trap = %+v, want null reference / ldfld", trap)
	}
	if line := m.LineForPC(trap.PC); line != 3 {
		t.Fatalf("trap attributed to line %d (pc=%d), want the ldfld's line 3", line, trap.PC)
	}
}

// TestFusedIncLocThenDivTrapAttribution: a division by zero in a loop
// body whose counter update and exit test are both fused still reports
// the div's pc/line on both engines.
func TestFusedIncLocThenDivTrapAttribution(t *testing.T) {
	v := testVM()
	// for (i = 0; i < 4; i++) { x = 10 / (2 - i) }  — traps at i == 2.
	m := v.AddMethod(nil, NewCodeBuilder().
		MarkLine(1).LdcI4(0).StLoc(0).
		Label("loop").
		MarkLine(2).LdcI4(10).LdcI4(2).LdLoc(0).Op(OpSub).Op(OpDiv).StLoc(1).
		MarkLine(3).LdLoc(0).LdcI4(1).Op(OpAdd).StLoc(0).
		MarkLine(4).LdLoc(0).LdcI4(4).Op(OpClt).BrTrue("loop").
		MarkLine(5).LdLoc(1).RetVal().
		Build("divloop", 0, 2, true))
	m.Verified = true
	info, err := v.QuickenMethod(m)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fused < 2 {
		t.Fatalf("Fused = %d, want the increment and the compare-branch", info.Fused)
	}
	trap := trapBoth(t, v, m)
	if trap.Kind != "division by zero" || trap.Detail != "div" {
		t.Fatalf("trap = %+v, want division by zero / div", trap)
	}
	if line := m.LineForPC(trap.PC); line != 2 {
		t.Fatalf("trap attributed to line %d (pc=%d), want the div's line 2", line, trap.PC)
	}
}

// TestFusedLdArgCallTrapAttribution: a trap raised while PUSHING a
// fused ldarg+call (step-budget exhaustion) charges the call half's
// pc, and a trap inside the callee names the callee, on both engines.
func TestFusedLdArgCallTrapAttribution(t *testing.T) {
	v := testVM()
	inv := v.AddMethod(nil, NewCodeBuilder().
		MarkLine(1).LdcI4(100).LdArg(0).Op(OpDiv).RetVal().
		Build("inv", 1, 0, true))
	inv.Verified = true
	caller := v.AddMethod(nil, NewCodeBuilder().
		MarkLine(1).LdArg(0).Call(inv).
		MarkLine(2).RetVal().
		Build("callinv", 1, 0, true))
	caller.Verified = true
	info, err := v.QuickenMethod(caller)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fused != 1 {
		t.Fatalf("Fused = %d, want 1 (ldarg+call)", info.Fused)
	}
	if _, err := v.QuickenMethod(inv); err != nil {
		t.Fatal(err)
	}
	// Callee trap: attribution is the callee's div, caller unaffected.
	trap := trapBoth(t, v, caller, IntValue(0))
	if trap.Kind != "division by zero" || trap.Method != inv.FullName() {
		t.Fatalf("trap = %+v, want division by zero in %s", trap, inv.FullName())
	}
	// Budget exhaustion at the fused call site: the call half charges.
	var qerr, berr error
	v.WithThread("quick", func(th *Thread) {
		th.SetStepBudget(1)
		_, qerr = th.Call(caller, IntValue(1))
	})
	quick := caller.quick
	caller.Unquicken()
	v.WithThread("base", func(th *Thread) {
		th.SetStepBudget(1)
		_, berr = th.Call(caller, IntValue(1))
	})
	caller.quick = quick
	var qt, bt *Trap
	if !errors.As(qerr, &qt) || !errors.As(berr, &bt) {
		t.Fatalf("budget errors: %v / %v", qerr, berr)
	}
	if *qt != *bt {
		t.Fatalf("budget trap diverges: quickened %+v, baseline %+v", *qt, *bt)
	}
	if qt.Kind != "step budget exhausted" || qt.Detail != inv.FullName() {
		t.Fatalf("budget trap = %+v", qt)
	}
}

// TestFusedCmpBrStepBudgetAttribution: when the step budget dies on a
// fused compare+branch's backward edge, the charge is attributed to
// the branch half's pc — the same offset the baseline loop reports.
func TestFusedCmpBrStepBudgetAttribution(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		MarkLine(1).LdcI4(0).StLoc(0).
		Label("loop").
		MarkLine(2).LdLoc(0).LdcI4(1).Op(OpAdd).StLoc(0).
		MarkLine(3).LdLoc(0).LdcI4(1000000).Op(OpClt).BrTrue("loop").
		MarkLine(4).Ret().
		Build("spincmp", 0, 1, false))
	m.Verified = true
	if _, err := v.QuickenMethod(m); err != nil {
		t.Fatal(err)
	}
	var qerr, berr error
	v.WithThread("quick", func(th *Thread) {
		th.SetStepBudget(10)
		_, qerr = th.Call(m)
	})
	quick := m.quick
	m.Unquicken()
	v.WithThread("base", func(th *Thread) {
		th.SetStepBudget(10)
		_, berr = th.Call(m)
	})
	m.quick = quick
	var qt, bt *Trap
	if !errors.As(qerr, &qt) || !errors.As(berr, &bt) {
		t.Fatalf("budget errors: %v / %v", qerr, berr)
	}
	if *qt != *bt {
		t.Fatalf("budget trap diverges: quickened %+v, baseline %+v", *qt, *bt)
	}
	if qt.Detail != "backward branch" {
		t.Fatalf("budget trap = %+v, want backward-branch charge", qt)
	}
	if line := m.LineForPC(qt.PC); line != 3 {
		t.Fatalf("budget charge attributed to line %d, want the branch's line 3", line)
	}
}

// TestFusedBoundsTrapAttribution: an out-of-bounds element access in
// quickened code unwinds through the BoundsError recover with the
// committed pc — identical to baseline.
func TestFusedBoundsTrapAttribution(t *testing.T) {
	// A bounds trap's detail embeds the object's heap address, so each
	// engine gets a fresh VM with an identical allocation history.
	build := func(quicken bool) *Trap {
		t.Helper()
		v := testVM()
		at := v.ArrayType(KindInt32, nil, 1)
		m := v.AddMethod(nil, NewCodeBuilder().
			MarkLine(1).LdcI4(2).NewArr(at).StLoc(0).
			MarkLine(2).LdLoc(0).LdcI4(9).Op(OpLdElem).RetVal().
			Build("oob", 0, 1, true))
		m.Verified = true
		if quicken {
			if _, err := v.QuickenMethod(m); err != nil {
				t.Fatal(err)
			}
		}
		var callErr error
		v.WithThread("t", func(th *Thread) { _, callErr = th.Call(m) })
		var trap *Trap
		if !errors.As(callErr, &trap) {
			t.Fatalf("error %v is not a trap", callErr)
		}
		if line := m.LineForPC(trap.PC); line != 2 {
			t.Fatalf("trap attributed to line %d (pc=%d), want 2", line, trap.PC)
		}
		return trap
	}
	qt, bt := build(true), build(false)
	if *qt != *bt {
		t.Fatalf("quickened trap %+v != baseline trap %+v", *qt, *bt)
	}
	if qt.Kind != "index out of range" {
		t.Fatalf("trap = %+v, want index out of range", qt)
	}
}

// TestTrapAfterFCallStaysTrap: the FCall passthrough must not widen —
// a dispatch-loop runtime error in bytecode that runs after a
// successful FCall is still the guest's fault and still traps.
func TestTrapAfterFCallStaysTrap(t *testing.T) {
	v := testVM()
	idx := v.RegisterInternal(InternalFunc{
		Name:  "test.ok",
		NArgs: 0,
		Fn:    func(th *Thread, args []Value) (Value, error) { return Value{}, nil },
	})
	// intern test.ok, then underflow the stack.
	m := v.AddMethod(nil, &Method{Name: "afterfcall",
		Code: []byte{byte(OpIntern), byte(idx), byte(idx >> 8), byte(OpAdd), byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}
