package vm

import (
	"errors"
	"testing"
)

// Regression tests for the interpreter's malformed-bytecode hardening:
// unverified code that underflows the operand stack, indexes frame
// slots out of range, or truncates an operand must surface as a typed
// *Trap from Thread.Call — never as a Go panic that kills the host.

func callExpectTrap(t *testing.T, v *VM, m *Method, kind string) {
	t.Helper()
	v.WithThread("t", func(th *Thread) {
		_, err := th.Call(m)
		if err == nil {
			t.Fatalf("%s: expected a trap, got success", m.FullName())
		}
		var trap *Trap
		if !errors.As(err, &trap) {
			t.Fatalf("%s: error %v (%T) is not a *Trap", m.FullName(), err, err)
		}
		if trap.Kind != kind {
			t.Fatalf("%s: trap kind = %q, want %q (%v)", m.FullName(), trap.Kind, kind, trap)
		}
	})
}

func TestTrapOnStackUnderflow(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, &Method{Name: "underflow", Code: []byte{byte(OpAdd), byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}

func TestTrapOnLocalOutOfRange(t *testing.T) {
	v := testVM()
	// ldloc 5 with zero locals.
	m := v.AddMethod(nil, &Method{Name: "badlocal", Code: []byte{byte(OpLdLoc), 5, 0, byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}

func TestTrapOnTruncatedOperand(t *testing.T) {
	v := testVM()
	// ldc.i4 needs 4 operand bytes; provide one.
	m := v.AddMethod(nil, &Method{Name: "truncated", Code: []byte{byte(OpLdcI4), 1}})
	callExpectTrap(t, v, m, "invalid program")
}

func TestTrapOnUndefinedOpcode(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, &Method{Name: "badop", Code: []byte{0xEE}})
	callExpectTrap(t, v, m, "bad opcode")
}

func TestTrapOnArgOutOfRange(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, &Method{Name: "badarg", Code: []byte{byte(OpLdArg), 3, 0, byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}

// TestHostFCallPanicEscapes: a Go runtime error raised inside a host
// FCall implementation is a bug in engine/host code, not malformed
// bytecode. It must escape Thread.Call as a panic so it crashes loudly
// instead of being converted into an "invalid program" trap that
// blames the guest.
func TestHostFCallPanicEscapes(t *testing.T) {
	v := testVM()
	idx := v.RegisterInternal(InternalFunc{
		Name:  "test.crash",
		NArgs: 0,
		Fn: func(th *Thread, args []Value) (Value, error) {
			var m map[string]int
			m["boom"] = 1 // nil map write: a genuine runtime.Error
			return Value{}, nil
		},
	})
	m := v.AddMethod(nil, &Method{Name: "crasher",
		Code: []byte{byte(OpIntern), byte(idx), byte(idx >> 8), byte(OpRet)}})
	v.WithThread("t", func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("host FCall runtime error was swallowed, want it to escape as a panic")
			}
		}()
		_, _ = th.Call(m)
	})
}

// TestTrapAfterFCallStaysTrap: the FCall passthrough must not widen —
// a dispatch-loop runtime error in bytecode that runs after a
// successful FCall is still the guest's fault and still traps.
func TestTrapAfterFCallStaysTrap(t *testing.T) {
	v := testVM()
	idx := v.RegisterInternal(InternalFunc{
		Name:  "test.ok",
		NArgs: 0,
		Fn:    func(th *Thread, args []Value) (Value, error) { return Value{}, nil },
	})
	// intern test.ok, then underflow the stack.
	m := v.AddMethod(nil, &Method{Name: "afterfcall",
		Code: []byte{byte(OpIntern), byte(idx), byte(idx >> 8), byte(OpAdd), byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}
