package vm

import (
	"errors"
	"testing"
)

// Regression tests for the interpreter's malformed-bytecode hardening:
// unverified code that underflows the operand stack, indexes frame
// slots out of range, or truncates an operand must surface as a typed
// *Trap from Thread.Call — never as a Go panic that kills the host.

func callExpectTrap(t *testing.T, v *VM, m *Method, kind string) {
	t.Helper()
	v.WithThread("t", func(th *Thread) {
		_, err := th.Call(m)
		if err == nil {
			t.Fatalf("%s: expected a trap, got success", m.FullName())
		}
		var trap *Trap
		if !errors.As(err, &trap) {
			t.Fatalf("%s: error %v (%T) is not a *Trap", m.FullName(), err, err)
		}
		if trap.Kind != kind {
			t.Fatalf("%s: trap kind = %q, want %q (%v)", m.FullName(), trap.Kind, kind, trap)
		}
	})
}

func TestTrapOnStackUnderflow(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, &Method{Name: "underflow", Code: []byte{byte(OpAdd), byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}

func TestTrapOnLocalOutOfRange(t *testing.T) {
	v := testVM()
	// ldloc 5 with zero locals.
	m := v.AddMethod(nil, &Method{Name: "badlocal", Code: []byte{byte(OpLdLoc), 5, 0, byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}

func TestTrapOnTruncatedOperand(t *testing.T) {
	v := testVM()
	// ldc.i4 needs 4 operand bytes; provide one.
	m := v.AddMethod(nil, &Method{Name: "truncated", Code: []byte{byte(OpLdcI4), 1}})
	callExpectTrap(t, v, m, "invalid program")
}

func TestTrapOnUndefinedOpcode(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, &Method{Name: "badop", Code: []byte{0xEE}})
	callExpectTrap(t, v, m, "bad opcode")
}

func TestTrapOnArgOutOfRange(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, &Method{Name: "badarg", Code: []byte{byte(OpLdArg), 3, 0, byte(OpRet)}})
	callExpectTrap(t, v, m, "invalid program")
}
