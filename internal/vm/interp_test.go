package vm

import (
	"errors"
	"strings"
	"testing"
)

func runMethod(t *testing.T, v *VM, m *Method, args ...Value) Value {
	t.Helper()
	var out Value
	v.WithThread("t", func(th *Thread) {
		r, err := th.Call(m, args...)
		if err != nil {
			t.Fatalf("call %s: %v", m.FullName(), err)
		}
		out = r
	})
	return out
}

func TestInterpArithmetic(t *testing.T) {
	v := testVM()
	// (a+b)*a - b
	m := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).LdArg(1).Op(OpAdd).
		LdArg(0).Op(OpMul).
		LdArg(1).Op(OpSub).
		RetVal().
		Build("f", 2, 0, true))
	got := runMethod(t, v, m, IntValue(7), IntValue(5))
	if got.Int() != (7+5)*7-5 {
		t.Errorf("got %d", got.Int())
	}
}

func TestInterpFloatOps(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).LdArg(1).Op(OpDivF).
		LdcR8(0.5).Op(OpAddF).
		RetVal().
		Build("f", 2, 0, true))
	got := runMethod(t, v, m, FloatValue(3), FloatValue(4))
	if got.Float() != 3.0/4.0+0.5 {
		t.Errorf("got %g", got.Float())
	}
}

func TestInterpConversions(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).Op(OpConvI2F).LdcR8(2).Op(OpMulF).Op(OpConvF2I).
		RetVal().
		Build("f", 1, 0, true))
	if got := runMethod(t, v, m, IntValue(21)); got.Int() != 42 {
		t.Errorf("got %d", got.Int())
	}
}

func TestInterpLoop(t *testing.T) {
	v := testVM()
	// sum 1..n
	m := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(0).StLoc(0). // sum
		LdArg(0).StLoc(1). // i
		Label("loop").
		LdLoc(1).BrFalse("done").
		LdLoc(0).LdLoc(1).Op(OpAdd).StLoc(0).
		LdLoc(1).LdcI4(1).Op(OpSub).StLoc(1).
		Br("loop").
		Label("done").
		LdLoc(0).RetVal().
		Build("sum", 1, 2, true))
	if got := runMethod(t, v, m, IntValue(100)); got.Int() != 5050 {
		t.Errorf("got %d", got.Int())
	}
}

func TestInterpDivByZeroTrap(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(1).LdcI4(0).Op(OpDiv).RetVal().
		Build("f", 0, 0, true))
	v.WithThread("t", func(th *Thread) {
		_, err := th.Call(m)
		var trap *Trap
		if !errors.As(err, &trap) {
			t.Fatalf("expected trap, got %v", err)
		}
		if trap.Kind != "division by zero" {
			t.Errorf("kind %q", trap.Kind)
		}
	})
}

func TestInterpStaticCall(t *testing.T) {
	v := testVM()
	callee := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).LdArg(0).Op(OpMul).RetVal().
		Build("square", 1, 0, true))
	caller := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).Call(callee).LdcI4(1).Op(OpAdd).RetVal().
		Build("f", 1, 0, true))
	if got := runMethod(t, v, caller, IntValue(6)); got.Int() != 37 {
		t.Errorf("got %d", got.Int())
	}
}

func TestInterpRecursion(t *testing.T) {
	v := testVM()
	b := NewCodeBuilder()
	// fib(n) = n < 2 ? n : fib(n-1)+fib(n-2)
	fib := &Method{Name: "fib", NArgs: 1, HasRet: true}
	v.AddMethod(nil, fib)
	b.LdArg(0).LdcI4(2).Op(OpClt).BrFalse("rec").
		LdArg(0).RetVal().
		Label("rec").
		LdArg(0).LdcI4(1).Op(OpSub).Call(fib).
		LdArg(0).LdcI4(2).Op(OpSub).Call(fib).
		Op(OpAdd).RetVal()
	fib.Code = b.Build("fib", 1, 0, true).Code
	if got := runMethod(t, v, fib, IntValue(15)); got.Int() != 610 {
		t.Errorf("fib(15) = %d", got.Int())
	}
}

func TestInterpCallDepthLimit(t *testing.T) {
	v := testVM()
	m := &Method{Name: "inf", NArgs: 0}
	v.AddMethod(nil, m)
	m.Code = NewCodeBuilder().Call(m).Ret().Build("inf", 0, 0, false).Code
	v.WithThread("t", func(th *Thread) {
		_, err := th.Call(m)
		if !errors.Is(err, ErrCallDepth) {
			t.Errorf("expected depth error, got %v", err)
		}
	})
}

func TestInterpObjectsAndFields(t *testing.T) {
	v := testVM()
	pt := pointClass(v)
	m := v.AddMethod(nil, NewCodeBuilder().
		NewObj(pt).StLoc(0).
		LdLoc(0).LdcI4(11).StFld(pt, "x").
		LdLoc(0).LdcI4(31).StFld(pt, "y").
		LdLoc(0).LdFld(pt, "x").
		LdLoc(0).LdFld(pt, "y").
		Op(OpAdd).RetVal().
		Build("f", 0, 1, true))
	if got := runMethod(t, v, m); got.Int() != 42 {
		t.Errorf("got %d", got.Int())
	}
}

func TestInterpNullFieldTrap(t *testing.T) {
	v := testVM()
	pt := pointClass(v)
	m := v.AddMethod(nil, NewCodeBuilder().
		LdNull().LdFld(pt, "x").RetVal().
		Build("f", 0, 0, true))
	v.WithThread("t", func(th *Thread) {
		_, err := th.Call(m)
		var trap *Trap
		if !errors.As(err, &trap) || trap.Kind != "null reference" {
			t.Errorf("got %v", err)
		}
	})
}

func TestInterpArrays(t *testing.T) {
	v := testVM()
	i32arr := v.ArrayType(KindInt32, nil, 1)
	// build arr[n], fill with i*2, sum
	m := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).NewArr(i32arr).StLoc(0).
		LdcI4(0).StLoc(1). // i
		Label("fill").
		LdLoc(1).LdArg(0).Op(OpClt).BrFalse("sum").
		LdLoc(0).LdLoc(1).LdLoc(1).LdcI4(2).Op(OpMul).Op(OpStElem).
		LdLoc(1).LdcI4(1).Op(OpAdd).StLoc(1).
		Br("fill").
		Label("sum").
		LdcI4(0).StLoc(2).LdcI4(0).StLoc(1).
		Label("loop").
		LdLoc(1).LdLoc(0).Op(OpLdLen).Op(OpClt).BrFalse("done").
		LdLoc(2).LdLoc(0).LdLoc(1).Op(OpLdElem).Op(OpAdd).StLoc(2).
		LdLoc(1).LdcI4(1).Op(OpAdd).StLoc(1).
		Br("loop").
		Label("done").
		LdLoc(2).RetVal().
		Build("f", 1, 3, true))
	if got := runMethod(t, v, m, IntValue(10)); got.Int() != 90 {
		t.Errorf("got %d", got.Int())
	}
}

func TestInterpArrayBoundsTrap(t *testing.T) {
	v := testVM()
	i32arr := v.ArrayType(KindInt32, nil, 1)
	m := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(3).NewArr(i32arr).LdcI4(5).Op(OpLdElem).RetVal().
		Build("f", 0, 0, true))
	v.WithThread("t", func(th *Thread) {
		_, err := th.Call(m)
		var trap *Trap
		if !errors.As(err, &trap) || trap.Kind != "index out of range" {
			t.Errorf("got %v", err)
		}
	})
}

func TestInterpVirtualDispatch(t *testing.T) {
	v := testVM()
	base := v.MustNewClass("Animal", nil, nil)
	dog := v.MustNewClass("Dog", base, nil)
	cat := v.MustNewClass("Cat", base, nil)

	speakBase := &Method{Name: "speak", NArgs: 1, HasRet: true, Virtual: true}
	v.AddMethod(base, speakBase)
	speakBase.Code = NewCodeBuilder().LdcI4(0).RetVal().Build("speak", 1, 0, true).Code

	speakDog := &Method{Name: "speak", NArgs: 1, HasRet: true, Virtual: true}
	v.AddMethod(dog, speakDog)
	speakDog.Code = NewCodeBuilder().LdcI4(1).RetVal().Build("speak", 1, 0, true).Code

	speakCat := &Method{Name: "speak", NArgs: 1, HasRet: true, Virtual: true}
	v.AddMethod(cat, speakCat)
	speakCat.Code = NewCodeBuilder().LdcI4(2).RetVal().Build("speak", 1, 0, true).Code

	// f(): new Dog().speak() * 10 + new Cat().speak()
	m := v.AddMethod(nil, NewCodeBuilder().
		NewObj(dog).CallVirt(speakBase).LdcI4(10).Op(OpMul).
		NewObj(cat).CallVirt(speakBase).Op(OpAdd).
		RetVal().
		Build("f", 0, 0, true))
	if got := runMethod(t, v, m); got.Int() != 12 {
		t.Errorf("got %d", got.Int())
	}
}

func TestInterpGlobals(t *testing.T) {
	v := testVM()
	g := v.AddGlobal("counter")
	m := v.AddMethod(nil, NewCodeBuilder().
		LdSFld(g).LdcI4(1).Op(OpAdd).StSFld(g).
		LdSFld(g).RetVal().
		Build("inc", 0, 0, true))
	runMethod(t, v, m)
	runMethod(t, v, m)
	if got := runMethod(t, v, m); got.Int() != 3 {
		t.Errorf("got %d", got.Int())
	}
}

func TestInterpInternalCall(t *testing.T) {
	v := testVM()
	calls := 0
	idx := v.RegisterInternal(InternalFunc{
		Name: "test.double", NArgs: 1, HasRet: true,
		Fn: func(t *Thread, args []Value) (Value, error) {
			calls++
			return IntValue(args[0].Int() * 2), nil
		},
	})
	m := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).Intern(idx).RetVal().
		Build("f", 1, 0, true))
	if got := runMethod(t, v, m, IntValue(8)); got.Int() != 16 {
		t.Errorf("got %d", got.Int())
	}
	if calls != 1 {
		t.Errorf("calls %d", calls)
	}
}

func TestInterpSurvivesGCMidProgram(t *testing.T) {
	// A managed loop that allocates heavily; objects held in locals
	// must survive the collections triggered mid-loop.
	v := New(Config{Heap: HeapConfig{YoungSize: 8 << 10, InitialElder: 64 << 10, ArenaMax: 32 << 20}})
	pt := pointClass(v)
	i32arr := v.ArrayType(KindInt32, nil, 1)
	// keep one Point in loc0 with x=999; churn arrays; verify at end.
	m := v.AddMethod(nil, NewCodeBuilder().
		NewObj(pt).StLoc(0).
		LdLoc(0).LdcI4(999).StFld(pt, "x").
		LdcI4(500).StLoc(1).
		Label("loop").
		LdLoc(1).BrFalse("done").
		LdcI4(256).NewArr(i32arr).Op(OpPop). // garbage
		LdLoc(1).LdcI4(1).Op(OpSub).StLoc(1).
		Br("loop").
		Label("done").
		LdLoc(0).LdFld(pt, "x").RetVal().
		Build("churn", 0, 2, true))
	if got := runMethod(t, v, m); got.Int() != 999 {
		t.Errorf("x = %d after churn", got.Int())
	}
	if v.Heap.Stats.Scavenges == 0 {
		t.Error("no collections occurred; test ineffective")
	}
}

func TestInterpFloat32ArrayWidening(t *testing.T) {
	v := testVM()
	f32arr := v.ArrayType(KindFloat32, nil, 1)
	m := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(1).NewArr(f32arr).StLoc(0).
		LdLoc(0).LdcI4(0).LdcR8(1.5).Op(OpStElem).
		LdLoc(0).LdcI4(0).Op(OpLdElem).RetVal().
		Build("f", 0, 1, true))
	if got := runMethod(t, v, m); got.Float() != 1.5 {
		t.Errorf("got %g", got.Float())
	}
}

func TestInterpRefScalarFieldMismatchTrap(t *testing.T) {
	v := testVM()
	node := nodeClass(v)
	m := v.AddMethod(nil, NewCodeBuilder().
		NewObj(node).LdcI4(123).StFld(node, "next"). // scalar into ref field
		Ret().
		Build("f", 0, 0, false))
	v.WithThread("t", func(th *Thread) {
		_, err := th.Call(m)
		var trap *Trap
		if !errors.As(err, &trap) || trap.Kind != "type mismatch" {
			t.Errorf("got %v", err)
		}
	})
}

func TestDisassembleRoundtrip(t *testing.T) {
	v := testVM()
	m := v.AddMethod(nil, NewCodeBuilder().
		LdcI4(5).StLoc(0).
		Label("l").LdLoc(0).BrFalse("e").
		LdLoc(0).LdcI4(1).Op(OpSub).StLoc(0).Br("l").
		Label("e").Ret().
		Build("m", 0, 1, false))
	dis := v.Disassemble(m)
	for _, want := range []string{"ldc.i4", "stloc", "brfalse", "ret"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}
