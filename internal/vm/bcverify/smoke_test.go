package bcverify_test

// Smoke tests for the abstract interpreter core, independent of the
// Motor engine signatures (those are exercised by corpus_test.go).

import (
	"strings"
	"testing"

	"motor/internal/vm"
	"motor/internal/vm/bcverify"
)

func assembleModule(t *testing.T, src string) (*vm.VM, *vm.Module) {
	t.Helper()
	v := vm.New(vm.Config{})
	mod, err := v.AssembleModule(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return v, mod
}

func TestVerifyValidModule(t *testing.T) {
	v, mod := assembleModule(t, `
.method main (0) void
.locals 2
    ldc.i4 10
    stloc 0
    ldc.i4 0
    stloc 1
loop:
    ldloc 1
    ldloc 0
    ceq
    brtrue done
    ldloc 1
    intern console.writei
    intern console.newline
    ldloc 1
    ldc.i4 1
    add
    stloc 1
    br loop
done:
    ret
.end
`)
	stats, err := bcverify.VerifyModule(v, mod.Methods, bcverify.Options{})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if stats.Methods != 1 || stats.Insts == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if !mod.Main.Verified || !mod.Main.TransportVerified {
		t.Fatalf("flags not set: %+v", mod.Main)
	}
}

func TestVerifyRejects(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"underflow", ".method main (0) void\n    add\n    ret\n.end\n", "stack underflow"},
		{"uninit-local", ".method main (0) void\n.locals 1\n    ldloc 0\n    pop\n    ret\n.end\n", "before initialization"},
		{"fallthrough-valued", ".method f (0) int64\n    ldc.i4 1\n    pop\n.end\n.method main (0) void\n    ret\n.end\n", "falls off the end"},
		{"ret-nonempty", ".method main (0) void\n    ldc.i4 1\n    ret\n.end\n", "stack not empty"},
		{"merge-confusion", `
.method main (0) void
.locals 1
    ldc.i4 1
    brtrue a
    ldc.r8 1.5
    br join
a:
    ldc.i4 7
join:
    pop
    ret
.end
`, "type confusion on merge"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, mod := assembleModule(t, tc.src)
			_, err := bcverify.VerifyModule(v, mod.Methods, bcverify.Options{})
			if err == nil {
				t.Fatalf("verified, want rejection containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
			var ve *bcverify.Error
			if !errorsAs(err, &ve) {
				t.Fatalf("err %T is not *bcverify.Error", err)
			}
		})
	}
}

func errorsAs(err error, target **bcverify.Error) bool {
	e, ok := err.(*bcverify.Error)
	if ok {
		*target = e
	}
	return ok
}
