package bcverify_test

// Corpus-driven verifier tests.
//
// testdata/invalid holds modules the verifier must reject; the first
// "; expect: <substring>" comment names the diagnostic. testdata/valid
// holds modules that must verify cleanly (and, unless the module says
// otherwise, prove every method transport-safe). Both assemble against
// a bare VM with the System.MP surface stubbed in, exactly like
// `motor -mode check`.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"motor/internal/core"
	"motor/internal/vm"
	"motor/internal/vm/bcverify"
)

func corpusFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", dir, "*.masm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no corpus files under testdata/%s", dir)
	}
	return files
}

// expectMarker extracts the "; expect: ..." diagnostic substring.
func expectMarker(t *testing.T, src string) string {
	t.Helper()
	for _, line := range strings.Split(src, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "; expect:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	t.Fatal("corpus file has no '; expect:' marker")
	return ""
}

func verifyCorpusModule(t *testing.T, src string) (*vm.Module, bcverify.Stats, error) {
	t.Helper()
	v := vm.New(vm.Config{})
	core.RegisterVerifyStubs(v)
	mod, err := v.AssembleModule(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	stats, verr := bcverify.VerifyModule(v, mod.Methods, bcverify.Options{Sigs: core.Signatures()})
	return mod, stats, verr
}

func TestInvalidCorpusRejected(t *testing.T) {
	files := corpusFiles(t, "invalid")
	if len(files) < 15 {
		t.Fatalf("invalid corpus has %d modules, want >= 15", len(files))
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			want := expectMarker(t, string(raw))
			_, _, verr := verifyCorpusModule(t, string(raw))
			if verr == nil {
				t.Fatalf("verified, want rejection containing %q", want)
			}
			ve, ok := verr.(*bcverify.Error)
			if !ok {
				t.Fatalf("rejection %v (%T) is not *bcverify.Error", verr, verr)
			}
			if !strings.Contains(ve.Error(), want) {
				t.Fatalf("rejection %q does not contain %q", ve.Error(), want)
			}
			// Diagnostics must locate the failure: a method name always,
			// and for instruction-level errors a masm source line.
			if ve.Method == "" {
				t.Errorf("rejection has no method name: %v", ve)
			}
			if ve.Inst >= 0 && ve.Line <= 0 {
				t.Errorf("instruction-level rejection has no source line: %v", ve)
			}
		})
	}
}

func TestValidCorpusVerifies(t *testing.T) {
	for _, path := range corpusFiles(t, "valid") {
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mod, stats, verr := verifyCorpusModule(t, string(raw))
			if verr != nil {
				t.Fatalf("verify: %v", verr)
			}
			if stats.Methods != len(mod.Methods) {
				t.Errorf("verified %d of %d methods", stats.Methods, len(mod.Methods))
			}
			for _, m := range mod.Methods {
				if !m.Verified {
					t.Errorf("%s not flagged Verified", m.FullName())
				}
			}
		})
	}
}

// TestValidCorpusTransferability pins down the static transferability
// judgment per module: every method provable except where the module
// is specifically about keeping the dynamic check.
func TestValidCorpusTransferability(t *testing.T) {
	wantDynamic := map[string]bool{
		// sendit's buffer arrives as an untyped argument.
		"unknown-buffer-dynamic.masm": true,
		// A superclass join is an upper bound, not an exact type.
		"join-keeps-dynamic.masm": true,
		// A field's declared class is an upper bound, not an exact type.
		"field-load-keeps-dynamic.masm": true,
	}
	for _, path := range corpusFiles(t, "valid") {
		base := filepath.Base(path)
		t.Run(base, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mod, stats, verr := verifyCorpusModule(t, string(raw))
			if verr != nil {
				t.Fatalf("verify: %v", verr)
			}
			if wantDynamic[base] {
				if stats.Transportable == len(mod.Methods) {
					t.Errorf("all %d methods proven transportable, expected at least one dynamic", len(mod.Methods))
				}
			} else if stats.Transportable != len(mod.Methods) {
				for _, m := range mod.Methods {
					if !m.TransportVerified {
						t.Errorf("%s not proven transport-safe", m.FullName())
					}
				}
			}
		})
	}
}
