// Package bcverify statically verifies Motor bytecode at module load.
//
// The SSCLI runtime the paper builds on ships a CIL verifier; until
// now the Motor reproduction executed any assembled module unchecked,
// relying on interpreter traps — and, for the §4.2.1 object-model
// integrity rule, a per-operation dynamic check in the engine. This
// package restores load-time verification by abstract interpretation
// over the operand stack of every method:
//
//   - every instruction is decoded against the opcode-effect metadata
//     table (vm.Op.Effect): unknown opcodes, truncated operands and
//     branches into the middle of an instruction are structural errors;
//   - a worklist fixpoint computes the stack depth and slot types at
//     every reachable instruction; the type lattice is
//     {int, float, ref(class), any} plus definitely-null and
//     uninitialized-local facts (see docs/VERIFIER.md);
//   - merge points require equal depths and compatible slot types
//     (int/float confusion is rejected; references widen to their
//     common ancestor; anything meets SKAny at SKAny);
//   - locals must be assigned before use; call/callvirt/intern arity,
//     virtual dispatch shape and declared return types are checked;
//     ret/ret.val must match the method signature with an empty stack.
//
// On top of the lattice runs the static transferability pass: FCall
// signatures (core.Signatures) mark which parameters are MPI transport
// buffers and which integrity constraint applies. A method all of
// whose buffer arguments are provably transferable is flagged
// TransportVerified, and the engine's runtime check becomes a debug
// assertion while such a method's frame is on top (paper §4.2.1;
// compare KaMPIng's compile-time buffer checking).
//
// Rejections carry the method, instruction index, pc and masm source
// line (via the assembler's line tables).
package bcverify

import (
	"fmt"
	"time"

	"motor/internal/vm"
)

// Constraint is the integrity requirement an FCall places on a
// transport buffer parameter (paper §4.2.1).
type Constraint uint8

// Buffer constraints.
const (
	// NoRefFields admits any object whose instance data contains no
	// references: classes of scalars, or simple-typed arrays. This is
	// the wholeBuf rule.
	NoRefFields Constraint = iota
	// SimpleArray admits only arrays of unmanaged scalars — the
	// rangeBuf rule for offset/count operations.
	SimpleArray
)

// String names the constraint for diagnostics.
func (c Constraint) String() string {
	if c == SimpleArray {
		return "simple-typed array"
	}
	return "reference-free object"
}

// BufParam marks one FCall argument as a transport buffer.
type BufParam struct {
	// Arg is the parameter position (0-based, declaration order).
	Arg int
	// Constraint is the integrity rule the engine would otherwise
	// check dynamically.
	Constraint Constraint
}

// Sig is the verifier-visible signature of one internal call: arity,
// result kind (KindVoid for none) and its transport buffer
// parameters. The Motor core exposes the System.MP surface as a
// map[string]Sig via core.Signatures.
type Sig struct {
	Name  string
	NArgs int
	Ret   vm.Kind
	Bufs  []BufParam
}

// Options configures verification.
type Options struct {
	// Sigs maps FCall names to signatures. The VM builtin sigs
	// (BuiltinSigs) are merged in automatically; entries here win.
	// Interns of FCalls absent from the merged map verify structurally
	// (arity from the registry) but leave the method not
	// TransportVerified.
	Sigs map[string]Sig
}

// Stats aggregates one verification run.
type Stats struct {
	// Methods and Insts count verified methods and decoded
	// instructions.
	Methods int
	Insts   int
	// Transportable counts methods proven transport-safe.
	Transportable int
	// Elapsed is wall time spent verifying.
	Elapsed time.Duration
}

// Error is a verification rejection with a precise location.
type Error struct {
	Method string
	Inst   int // instruction index within the method, -1 for whole-method errors
	PC     int // bytecode offset
	Line   int // masm source line, 0 when unknown
	Msg    string
}

// Error implements the error interface.
func (e *Error) Error() string {
	loc := fmt.Sprintf("inst #%d (pc=%d)", e.Inst, e.PC)
	if e.Inst < 0 {
		loc = "method"
	}
	if e.Line > 0 {
		loc += fmt.Sprintf(", line %d", e.Line)
	}
	return fmt.Sprintf("bcverify: %s: %s: %s", e.Method, loc, e.Msg)
}

// BuiltinSigs describes the FCalls every VM registers regardless of
// embedder (internal/vm/builtins.go), so modules using only console
// and GC calls can still be proven transport-safe.
func BuiltinSigs() map[string]Sig {
	return map[string]Sig{
		"console.writei":  {Name: "console.writei", NArgs: 1},
		"console.writef":  {Name: "console.writef", NArgs: 1},
		"console.writes":  {Name: "console.writes", NArgs: 1},
		"console.newline": {Name: "console.newline", NArgs: 0},
		"sys.ticks":       {Name: "sys.ticks", NArgs: 0, Ret: vm.KindInt64},
		"gc.collect":      {Name: "gc.collect", NArgs: 1},
		"gc.scavenges":    {Name: "gc.scavenges", NArgs: 0, Ret: vm.KindInt64},
	}
}

// VerifyModule verifies every method of a freshly assembled module
// against the VM it was registered on. On success each method is
// marked Verified (and TransportVerified where proven) and stats are
// returned; the first rejection aborts with a *Error.
func VerifyModule(v *vm.VM, methods []*vm.Method, opts Options) (Stats, error) {
	start := time.Now()
	sigs := mergeSigs(opts.Sigs)
	var st Stats
	for _, m := range methods {
		insts, transportable, err := verifyMethod(v, m, sigs)
		st.Insts += insts
		if err != nil {
			st.Elapsed = time.Since(start)
			return st, err
		}
		m.Verified = true
		m.TransportVerified = transportable
		st.Methods++
		if transportable {
			st.Transportable++
		}
	}
	st.Elapsed = time.Since(start)
	return st, nil
}

// VerifyMethod verifies a single method (tests, hand-built code). The
// method is flagged on success exactly as by VerifyModule.
func VerifyMethod(v *vm.VM, m *vm.Method, opts Options) error {
	_, transportable, err := verifyMethod(v, m, mergeSigs(opts.Sigs))
	if err != nil {
		return err
	}
	m.Verified = true
	m.TransportVerified = transportable
	return nil
}

func mergeSigs(user map[string]Sig) map[string]Sig {
	sigs := BuiltinSigs()
	for name, s := range user {
		sigs[name] = s
	}
	return sigs
}
