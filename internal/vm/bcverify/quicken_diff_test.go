package bcverify_test

// End-to-end quickening tests at the masm level: the verifier's fact
// collection feeding vm.QuickenMethod, and the differential property
// — quickened and baseline execution of VERIFIED modules agree on
// results, stdout and traps — over hand-written modules and the whole
// valid corpus. The package-internal differential suite (internal/vm/
// quicken_diff_test.go) covers randomized raw bytecode; this file
// covers the assembled + verified pipeline exactly as Rank.Load runs
// it.

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"motor/internal/core"
	"motor/internal/vm"
	"motor/internal/vm/bcverify"
)

// TestFactsFromAllocationSite: a receiver flowing straight from
// newobj carries an exact-type fact at its field accesses, and the
// store's value category is recorded as checked.
func TestFactsFromAllocationSite(t *testing.T) {
	src := `
.class P
  .field int32 x
.end
.method main (0) int32
  .locals 1
  newobj P
  stloc 0
  ldloc 0
  ldc.i4 5
  stfld P.x
  ldloc 0
  ldfld P.x
  ret.val
.end
`
	mod, _, verr := verifyCorpusModule(t, src)
	if verr != nil {
		t.Fatal(verr)
	}
	var main *vm.Method
	for _, m := range mod.Methods {
		if m.Name == "main" {
			main = m
		}
	}
	if main == nil || main.Facts == nil {
		t.Fatalf("main has no facts")
	}
	if len(main.Facts) != 2 {
		t.Fatalf("facts = %v, want exactly the stfld and the ldfld", main.Facts)
	}
	var checked int
	for pc, f := range main.Facts {
		if f.ExactType == 0 {
			t.Errorf("fact at pc=%d has no exact type", pc)
		}
		if f.StoreChecked {
			checked++
		}
	}
	if checked != 1 {
		t.Errorf("%d store-checked facts, want 1 (the stfld)", checked)
	}
}

// TestFactsNotFromUpperBound: a receiver read back out of a field has
// a declared class (an upper bound) but no allocation-site exactness —
// no fact may be recorded, so quickening keeps dynamic dispatch.
func TestFactsNotFromUpperBound(t *testing.T) {
	src := `
.class Q
  .field int32 x
.end
.class Holder
  .field Q q
.end
.method main (0) int32
  .locals 1
  newobj Holder
  stloc 0
  ldloc 0
  ldfld Holder.q
  ldfld Q.x
  ret.val
.end
`
	mod, _, verr := verifyCorpusModule(t, src)
	if verr != nil {
		t.Fatal(verr)
	}
	for _, m := range mod.Methods {
		if m.Name != "main" {
			continue
		}
		// The first ldfld's receiver (the Holder) IS exact; the second
		// ldfld's receiver (the loaded Q) must not be.
		exact := 0
		for _, f := range m.Facts {
			if f.ExactType != 0 {
				exact++
			}
		}
		if exact != 1 {
			t.Fatalf("facts = %v, want exactly one exact receiver (the Holder)", m.Facts)
		}
	}
}

// --- masm-level differential execution -------------------------------------

type masmOutcome struct {
	val vm.Value
	err error
	out string
}

// buildExecVM assembles and verifies src on a fresh VM with the
// System.MP surface stubbed and a deterministic clock, mirroring the
// `motor -mode check` environment plus execution.
func buildExecVM(t *testing.T, src string, out *bytes.Buffer) (*vm.VM, *vm.Module) {
	t.Helper()
	v := vm.New(vm.Config{Name: "diff", Stdout: out,
		Heap: vm.HeapConfig{YoungSize: 64 << 10, InitialElder: 256 << 10, ArenaMax: 32 << 20}})
	core.RegisterVerifyStubs(v)
	// sys.ticks is wall-clock; re-point it at a counter so two runs of
	// the same module cannot diverge through time.
	ticks := int64(0)
	v.RegisterInternal(vm.InternalFunc{
		Name: "sys.ticks", NArgs: 0, HasRet: true,
		Fn: func(t *vm.Thread, args []vm.Value) (vm.Value, error) {
			ticks++
			return vm.IntValue(ticks), nil
		},
	})
	mod, err := v.AssembleModule(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if _, verr := bcverify.VerifyModule(v, mod.Methods, bcverify.Options{Sigs: core.Signatures()}); verr != nil {
		t.Fatalf("verify: %v", verr)
	}
	return v, mod
}

func execModule(t *testing.T, src string, quicken bool) (masmOutcome, bool) {
	t.Helper()
	var buf bytes.Buffer
	v, mod := buildExecVM(t, src, &buf)
	if mod.Main == nil || mod.Main.NArgs != 0 {
		return masmOutcome{}, false
	}
	if quicken {
		for _, m := range mod.Methods {
			if _, err := v.QuickenMethod(m); err != nil {
				t.Fatalf("quicken %s: %v", m.FullName(), err)
			}
			if !m.Quickened() {
				t.Fatalf("%s not quickened", m.FullName())
			}
		}
	}
	o := masmOutcome{}
	v.WithThread("t", func(th *vm.Thread) {
		th.SetStepBudget(200_000)
		o.val, o.err = th.Call(mod.Main)
	})
	o.out = buf.String()
	return o, true
}

// diffModule runs src on both engines and fails on any observable
// divergence; it reports whether a main existed to run.
func diffModule(t *testing.T, src string) bool {
	t.Helper()
	q, ran := execModule(t, src, true)
	if !ran {
		return false
	}
	b, _ := execModule(t, src, false)
	if q.val != b.val {
		t.Errorf("quickened value %+v, baseline %+v", q.val, b.val)
	}
	if q.out != b.out {
		t.Errorf("quickened stdout %q, baseline %q", q.out, b.out)
	}
	switch {
	case (q.err == nil) != (b.err == nil):
		t.Errorf("quickened err %v, baseline err %v", q.err, b.err)
	case q.err != nil:
		var qt, bt *vm.Trap
		qTrap, bTrap := errors.As(q.err, &qt), errors.As(b.err, &bt)
		if qTrap != bTrap {
			t.Errorf("quickened err %v (%T), baseline %v (%T)", q.err, q.err, b.err, b.err)
		} else if qTrap && *qt != *bt {
			t.Errorf("quickened trap %+v, baseline trap %+v", *qt, *bt)
		} else if !qTrap && q.err.Error() != b.err.Error() {
			t.Errorf("quickened err %q, baseline err %q", q.err, b.err)
		}
	}
	return true
}

// TestQuickenValidCorpusDifferential executes every valid-corpus
// module under both engines. Most of them hit the mp.* stubs and stop
// with the stub error — which must still be byte-identical.
func TestQuickenValidCorpusDifferential(t *testing.T) {
	ran := 0
	for _, path := range corpusFiles(t, "valid") {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(pathBase(path), func(t *testing.T) {
			if diffModule(t, string(raw)) {
				ran++
			}
		})
	}
	if ran == 0 {
		t.Fatal("no valid-corpus module had a runnable main")
	}
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// TestQuickenMasmDevirt: the full pipeline — assemble, verify (facts),
// quicken — devirtualizes an allocation-site virtual call and computes
// the same answer as baseline dispatch.
func TestQuickenMasmDevirt(t *testing.T) {
	src := `
.class Shape
  .method virtual area (0) int32
    ldc.i4 0
    ret.val
  .end
.end
.class Square extends Shape
  .field int32 side
  .method virtual area (0) int32
    ldarg 0
    ldfld Square.side
    ldarg 0
    ldfld Square.side
    mul
    ret.val
  .end
.end
.method main (0) int32
  .locals 1
  newobj Square
  stloc 0
  ldloc 0
  ldc.i4 7
  stfld Square.side
  ldloc 0
  callvirt Shape.area
  ret.val
.end
`
	var buf bytes.Buffer
	v, mod := buildExecVM(t, src, &buf)
	devirted := 0
	for _, m := range mod.Methods {
		info, err := v.QuickenMethod(m)
		if err != nil {
			t.Fatalf("quicken %s: %v", m.FullName(), err)
		}
		devirted += info.Devirted
	}
	if devirted != 1 {
		t.Errorf("Devirted = %d, want 1 (the allocation-site callvirt)", devirted)
	}
	var got vm.Value
	var err error
	v.WithThread("t", func(th *vm.Thread) { got, err = th.Call(mod.Main) })
	if err != nil || got.Int() != 49 {
		t.Fatalf("main = %v, %v; want 49", got, err)
	}
	if !diffModule(t, src) {
		t.Fatal("module did not run")
	}
}

// TestQuickenMasmKernels: compute-bound masm kernels (the shapes the
// interpreter benchmark uses) agree across engines, including console
// output and conv.f2i rounding.
func TestQuickenMasmKernels(t *testing.T) {
	kernels := map[string]string{
		"intsum": `
.method main (0) int32
  .locals 2
  ldc.i4 0
  stloc 0
  ldc.i4 0
  stloc 1
loop:
  ldloc 1
  ldloc 0
  add
  stloc 1
  ldloc 0
  ldc.i4 1
  add
  stloc 0
  ldloc 0
  ldc.i4 1000
  clt
  brtrue loop
  ldloc 1
  ret.val
.end
`,
		"floatpoly": `
.method main (0) int32
  .locals 2
  ldc.i4 0
  stloc 0
  ldc.i4 0
  stloc 1
loop:
  ldloc 0
  conv.i2f
  ldc.r8 0.5
  mul.f
  ldloc 0
  conv.i2f
  add.f
  conv.f2i
  ldloc 1
  add
  stloc 1
  ldloc 0
  ldc.i4 1
  add
  stloc 0
  ldloc 0
  ldc.i4 500
  clt
  brtrue loop
  ldloc 1
  ret.val
.end
`,
		"fib": `
.method fib (1) int32
  ldarg 0
  ldc.i4 2
  clt
  brfalse rec
  ldarg 0
  ret.val
rec:
  ldarg 0
  ldc.i4 1
  sub
  call fib
  ldarg 0
  ldc.i4 2
  sub
  call fib
  add
  ret.val
.end
.method main (0) int32
  ldc.i4 18
  call fib
  intern console.writei
  ldc.i4 18
  call fib
  ret.val
.end
`,
	}
	for name, src := range kernels {
		t.Run(name, func(t *testing.T) {
			if !diffModule(t, src) {
				t.Fatal("kernel did not run")
			}
		})
	}
}
