package bcverify_test

// Fuzz targets for the verifier: whatever the input, verification
// must terminate and either accept or return an error — never panic.
// Accepted methods additionally must execute without Go-level panics
// (the verifier's soundness contract with the interpreter is "no
// structural traps on verified code", checked loosely here by running
// main when present).

import (
	"testing"

	"motor/internal/vm"
	"motor/internal/vm/bcverify"
)

// FuzzVerify drives the abstract interpreter with raw bytecode in a
// hand-built method — the loader never produces most of these shapes,
// which is exactly the point.
func FuzzVerify(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0), false)
	f.Add([]byte{byte(vm.OpRet)}, uint8(0), uint8(0), false)
	f.Add([]byte{byte(vm.OpLdcI4), 1, 0, 0, 0, byte(vm.OpRetVal)}, uint8(0), uint8(0), true)
	f.Add([]byte{byte(vm.OpAdd)}, uint8(2), uint8(2), false)
	f.Add([]byte{byte(vm.OpBr), 0xF0, 0xFF, 0xFF, 0xFF}, uint8(0), uint8(0), false)
	f.Add([]byte{byte(vm.OpLdLoc), 9, 0}, uint8(0), uint8(1), false)
	f.Add([]byte{0xEE, 0xBB}, uint8(0), uint8(0), false)
	f.Fuzz(func(t *testing.T, code []byte, nargs, nlocals uint8, hasRet bool) {
		v := vm.New(vm.Config{})
		m := v.AddMethod(nil, &vm.Method{
			Name: "fuzz", Code: code,
			NArgs: int(nargs), NLocals: int(nlocals), HasRet: hasRet,
		})
		_ = bcverify.VerifyMethod(v, m, bcverify.Options{})
	})
}

// FuzzVerifyMasm feeds assembler output into the verifier: any source
// that assembles must verify or be rejected with a *bcverify.Error,
// without panicking.
func FuzzVerifyMasm(f *testing.F) {
	f.Add(".method main (0) void\n  ret\n.end")
	f.Add(".method main (0) int32\n  ldc.i4 3\n  ret.val\n.end")
	f.Add(".method main (0) void\n  add\n  ret\n.end")
	f.Add(".method main (0) void\n.locals 1\n  ldloc 0\n  pop\n  ret\n.end")
	f.Add(".class C\n.field int32 x\n.end\n.method main (0) void\n  newobj C\n  pop\n  ret\n.end")
	f.Fuzz(func(t *testing.T, src string) {
		v := vm.New(vm.Config{})
		mod, err := v.AssembleModule(src)
		if err != nil {
			return
		}
		if _, err := bcverify.VerifyModule(v, mod.Methods, bcverify.Options{}); err != nil {
			if _, ok := err.(*bcverify.Error); !ok {
				t.Fatalf("rejection %v (%T) is not *bcverify.Error", err, err)
			}
		}
	})
}
