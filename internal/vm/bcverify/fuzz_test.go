package bcverify_test

// Fuzz targets for the verifier: whatever the input, verification
// must terminate and either accept or return an error — never panic.
// Accepted methods additionally must execute without Go-level panics
// (the verifier's soundness contract with the interpreter is "no
// structural traps on verified code", checked loosely here by running
// main when present).

import (
	"bytes"
	"errors"
	"testing"

	"motor/internal/vm"
	"motor/internal/vm/bcverify"
)

// FuzzVerify drives the abstract interpreter with raw bytecode in a
// hand-built method — the loader never produces most of these shapes,
// which is exactly the point.
func FuzzVerify(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0), false)
	f.Add([]byte{byte(vm.OpRet)}, uint8(0), uint8(0), false)
	f.Add([]byte{byte(vm.OpLdcI4), 1, 0, 0, 0, byte(vm.OpRetVal)}, uint8(0), uint8(0), true)
	f.Add([]byte{byte(vm.OpAdd)}, uint8(2), uint8(2), false)
	f.Add([]byte{byte(vm.OpBr), 0xF0, 0xFF, 0xFF, 0xFF}, uint8(0), uint8(0), false)
	f.Add([]byte{byte(vm.OpLdLoc), 9, 0}, uint8(0), uint8(1), false)
	f.Add([]byte{0xEE, 0xBB}, uint8(0), uint8(0), false)
	f.Fuzz(func(t *testing.T, code []byte, nargs, nlocals uint8, hasRet bool) {
		v := vm.New(vm.Config{})
		m := v.AddMethod(nil, &vm.Method{
			Name: "fuzz", Code: code,
			NArgs: int(nargs), NLocals: int(nlocals), HasRet: hasRet,
		})
		_ = bcverify.VerifyMethod(v, m, bcverify.Options{})
	})
}

// FuzzVerifyMasm feeds assembler output into the verifier: any source
// that assembles must verify or be rejected with a *bcverify.Error,
// without panicking. Sources that DO verify are then executed twice —
// quickened and baseline — and the two engines must agree on result,
// stdout and trap identity (the load-path contract: quickening may
// never change observable behaviour of verified code).
func FuzzVerifyMasm(f *testing.F) {
	f.Add(".method main (0) void\n  ret\n.end")
	f.Add(".method main (0) int32\n  ldc.i4 3\n  ret.val\n.end")
	f.Add(".method main (0) void\n  add\n  ret\n.end")
	f.Add(".method main (0) void\n.locals 1\n  ldloc 0\n  pop\n  ret\n.end")
	f.Add(".class C\n.field int32 x\n.end\n.method main (0) void\n  newobj C\n  pop\n  ret\n.end")
	// Seeds that reach the execution comparison, including a fused
	// loop, a conv.f2i edge and a trap path.
	f.Add(".method main (0) int32\n.locals 1\n  ldc.i4 0\n  stloc 0\nl:\n  ldloc 0\n  ldc.i4 1\n  add\n  stloc 0\n  ldloc 0\n  ldc.i4 9\n  clt\n  brtrue l\n  ldloc 0\n  ret.val\n.end")
	f.Add(".method main (0) int32\n  ldc.r8 1e300\n  conv.f2i\n  ret.val\n.end")
	f.Add(".method main (0) int32\n  ldc.i4 1\n  ldc.i4 0\n  div\n  ret.val\n.end")
	f.Fuzz(func(t *testing.T, src string) {
		v := vm.New(vm.Config{})
		mod, err := v.AssembleModule(src)
		if err != nil {
			return
		}
		if _, err := bcverify.VerifyModule(v, mod.Methods, bcverify.Options{}); err != nil {
			if _, ok := err.(*bcverify.Error); !ok {
				t.Fatalf("rejection %v (%T) is not *bcverify.Error", err, err)
			}
			return
		}
		fuzzExecBoth(t, src)
	})
}

// fuzzOutcome is one engine's observable result for fuzzExecBoth.
type fuzzOutcome struct {
	ran  bool
	val  vm.Value
	err  string
	trap vm.Trap
	out  string
}

// fuzzExecBoth executes a module that already verified once on two
// fresh VMs — quickened and baseline — and compares every observable.
// Each VM gets a deterministic clock so sys.ticks cannot diverge.
func fuzzExecBoth(t *testing.T, src string) {
	run := func(quicken bool) fuzzOutcome {
		var buf bytes.Buffer
		v := vm.New(vm.Config{Stdout: &buf,
			Heap: vm.HeapConfig{YoungSize: 64 << 10, InitialElder: 256 << 10, ArenaMax: 16 << 20}})
		ticks := int64(0)
		v.RegisterInternal(vm.InternalFunc{
			Name: "sys.ticks", NArgs: 0, HasRet: true,
			Fn: func(t *vm.Thread, args []vm.Value) (vm.Value, error) {
				ticks++
				return vm.IntValue(ticks), nil
			},
		})
		mod, err := v.AssembleModule(src)
		if err != nil {
			return fuzzOutcome{}
		}
		if _, err := bcverify.VerifyModule(v, mod.Methods, bcverify.Options{}); err != nil {
			return fuzzOutcome{}
		}
		if mod.Main == nil || mod.Main.NArgs != 0 {
			return fuzzOutcome{}
		}
		if quicken {
			for _, m := range mod.Methods {
				if _, qerr := v.QuickenMethod(m); qerr != nil {
					t.Fatalf("verified method %s refused to quicken: %v", m.FullName(), qerr)
				}
			}
		}
		o := fuzzOutcome{ran: true}
		v.WithThread("t", func(th *vm.Thread) {
			th.SetStepBudget(100_000)
			var cerr error
			o.val, cerr = th.Call(mod.Main)
			if cerr != nil {
				o.err = cerr.Error()
				var trap *vm.Trap
				if errors.As(cerr, &trap) {
					o.trap = *trap
				}
			}
		})
		o.out = buf.String()
		return o
	}
	q, b := run(true), run(false)
	if q != b {
		t.Fatalf("engines diverge on verified module:\nquickened: %+v\nbaseline:  %+v\nsource:\n%s", q, b, src)
	}
}
