package bcverify_test

// Structural rejections only reachable with hand-built bytecode — the
// assembler cannot emit mid-instruction branch targets, undefined
// opcodes, or truncated operands.

import (
	"strings"
	"testing"

	"motor/internal/vm"
	"motor/internal/vm/bcverify"
)

func verifyRaw(t *testing.T, code []byte, nargs, nlocals int, hasRet bool) error {
	t.Helper()
	v := vm.New(vm.Config{})
	m := v.AddMethod(nil, &vm.Method{
		Name: "raw", Code: code, NArgs: nargs, NLocals: nlocals, HasRet: hasRet,
	})
	return bcverify.VerifyMethod(v, m, bcverify.Options{})
}

func wantReject(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("verified, want rejection containing %q", substr)
	}
	if _, ok := err.(*bcverify.Error); !ok {
		t.Fatalf("rejection %v (%T) is not *bcverify.Error", err, err)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("rejection %q does not contain %q", err, substr)
	}
}

func TestRawBranchIntoOperand(t *testing.T) {
	// br -9 from endPC=10 lands at pc=1 — inside ldc.i4's operand.
	code := []byte{
		byte(vm.OpLdcI4), 1, 0, 0, 0, // pc=0..4
		byte(vm.OpBr), 0xF7, 0xFF, 0xFF, 0xFF, // pc=5
	}
	err := verifyRaw(t, code, 0, 0, false)
	wantReject(t, err, "not an instruction boundary")
}

func TestRawBranchOutOfRange(t *testing.T) {
	// br far past the end of the method.
	err := verifyRaw(t, []byte{byte(vm.OpBr), 0x40, 0x00, 0x00, 0x00}, 0, 0, false)
	wantReject(t, err, "not an instruction boundary")
}

func TestRawBranchToExactEnd(t *testing.T) {
	// br +0 lands exactly on len(code): the implicit void return.
	if err := verifyRaw(t, []byte{byte(vm.OpBr), 0, 0, 0, 0}, 0, 0, false); err != nil {
		t.Fatalf("branch-to-end should verify: %v", err)
	}
}

func TestRawUnknownOpcode(t *testing.T) {
	err := verifyRaw(t, []byte{0xEE}, 0, 0, false)
	wantReject(t, err, "unknown opcode")
}

func TestRawTruncatedOperand(t *testing.T) {
	err := verifyRaw(t, []byte{byte(vm.OpLdcI4), 1, 2}, 0, 0, false)
	wantReject(t, err, "truncated operand")
}

func TestRawEmptyValuedMethod(t *testing.T) {
	err := verifyRaw(t, nil, 0, 0, true)
	wantReject(t, err, "falls off the end")
}

func TestRawVerifiedFlagNotSetOnReject(t *testing.T) {
	v := vm.New(vm.Config{})
	m := v.AddMethod(nil, &vm.Method{Name: "bad", Code: []byte{byte(vm.OpAdd)}})
	if err := bcverify.VerifyMethod(v, m, bcverify.Options{}); err == nil {
		t.Fatal("want rejection")
	}
	if m.Verified || m.TransportVerified {
		t.Fatalf("rejected method flagged verified: %+v", m)
	}
}
