package bcverify

// The abstract interpreter. One mver per method: decode the code into
// instructions, run a worklist fixpoint propagating abstract frame
// states (operand stack + locals + args), then judge transferability
// of every intern site against the recorded entry states.

import (
	"encoding/binary"
	"fmt"

	"motor/internal/vm"
)

// Verifier limits.
const (
	// maxVStack bounds the abstract operand stack; deeper methods are
	// rejected (the interpreter would accept them, but no reasonable
	// program needs 64k live operands).
	maxVStack = 1 << 16
)

// vt is one abstract stack/local slot.
type vt struct {
	kind vm.StackKind
	// mt is the statically known class or array type for SKRef slots;
	// nil means "some object" (as does mt == VM.ObjectMT for the
	// transferability judgment).
	mt *vm.MethodTable
	// exact marks mt as the value's exact runtime type, not just an
	// upper bound: set only by newobj/newarr/newmd (and ldnull), and
	// lost on merges of unequal types, call returns and field/element
	// loads. Only exact types may prove transferability — a slot whose
	// static class is a mere upper bound can hold a subclass with
	// reference fields at runtime.
	exact bool
	// null marks the slot as definitely the null constant.
	null bool
	// init is false only for locals that may be read before being
	// assigned. Stack slots are always init.
	init bool
}

var (
	vInt   = vt{kind: vm.SKInt, init: true}
	vFloat = vt{kind: vm.SKFloat, init: true}
	vAny   = vt{kind: vm.SKAny, init: true}
	vNull  = vt{kind: vm.SKRef, null: true, exact: true, init: true}
)

func vRef(mt *vm.MethodTable) vt { return vt{kind: vm.SKRef, mt: mt, init: true} }

// vRefExact types a freshly allocated object: mt is the runtime type.
func vRefExact(mt *vm.MethodTable) vt {
	return vt{kind: vm.SKRef, mt: mt, exact: true, init: true}
}

// kindVT maps a declared Kind (field, element, return) to its stack
// classification.
func kindVT(k vm.Kind, class *vm.MethodTable) vt {
	switch k {
	case vm.KindRef:
		return vRef(class)
	case vm.KindFloat32, vm.KindFloat64:
		return vFloat
	case vm.KindVoid:
		// Unknown-typed result (builder methods without declared
		// return types).
		return vAny
	default:
		return vInt
	}
}

// String renders the slot for diagnostics.
func (t vt) String() string {
	if !t.init {
		return "uninitialized"
	}
	switch t.kind {
	case vm.SKInt:
		return "int"
	case vm.SKFloat:
		return "float"
	case vm.SKRef:
		if t.null {
			return "null"
		}
		if t.mt != nil {
			return t.mt.String()
		}
		return "object"
	default:
		return "any"
	}
}

// state is the abstract frame at one program point.
type state struct {
	stack  []vt
	locals []vt
	args   []vt
}

func (s *state) clone() *state {
	return &state{
		stack:  append([]vt(nil), s.stack...),
		locals: append([]vt(nil), s.locals...),
		args:   append([]vt(nil), s.args...),
	}
}

// mergeVT joins two slot facts. The second result is a non-empty
// conflict description when the slots are irreconcilable.
func mergeVT(a, b vt) (vt, string) {
	if !a.init || !b.init {
		return vt{}, "" // uninitialized wins (reads are then rejected)
	}
	if a.kind == vm.SKAny || b.kind == vm.SKAny {
		return vAny, ""
	}
	if a.kind != b.kind {
		return vt{}, fmt.Sprintf("%s vs %s", a, b)
	}
	if a.kind == vm.SKRef {
		switch {
		case a.null && b.null:
			return vNull, ""
		case a.null:
			return b, ""
		case b.null:
			return a, ""
		}
		if a.mt == b.mt && a.exact && b.exact {
			return vRefExact(a.mt), ""
		}
		return vRef(commonAncestor(a.mt, b.mt)), ""
	}
	return a, ""
}

// commonAncestor computes the join of two static reference types; nil
// is the unknown-object top.
func commonAncestor(a, b *vm.MethodTable) *vm.MethodTable {
	if a == b {
		return a
	}
	if a == nil || b == nil {
		return nil
	}
	if a.Kind == vm.TKArray || b.Kind == vm.TKArray {
		return nil // distinct array types (or array vs class) join at object
	}
	for t := a; t != nil; t = t.Parent {
		if b.IsSubclassOf(t) {
			return t
		}
	}
	return nil
}

func eqVT(a, b vt) bool {
	return a.kind == b.kind && a.mt == b.mt && a.exact == b.exact &&
		a.null == b.null && a.init == b.init
}

// inst is one decoded instruction.
type inst struct {
	pc     int
	op     vm.Op
	arg    int64
	size   int
	target int // branch target as an instruction index; len(insts) = method end; -1 none
}

// vfail carries a *Error through panic so deep helpers stay linear.
type vfail struct{ e *Error }

// mver verifies one method.
type mver struct {
	v    *vm.VM
	m    *vm.Method
	sigs map[string]Sig

	insts  []inst
	pcIdx  map[int]int
	states []*state
	inWork []bool
	work   []int

	maxDepth int
}

func verifyMethod(v *vm.VM, m *vm.Method, sigs map[string]Sig) (insts int, transportable bool, err error) {
	c := &mver{v: v, m: m, sigs: sigs, pcIdx: make(map[int]int)}
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(vfail); ok {
				err = f.e
				return
			}
			panic(r)
		}
	}()
	if m.NArgs < 0 || m.NArgs > maxFrame || m.NLocals < 0 || m.NLocals > maxFrame {
		return 0, false, c.errAt(-1, "frame too large: %d args, %d locals", m.NArgs, m.NLocals)
	}
	if err := c.decode(); err != nil {
		return len(c.insts), false, err
	}
	if err := c.fixpoint(); err != nil {
		return len(c.insts), false, err
	}
	ok, terr := c.transferPass()
	if terr != nil {
		return len(c.insts), false, terr
	}
	if c.maxDepth > m.MaxStack {
		m.MaxStack = c.maxDepth
	}
	m.Facts = c.collectFacts()
	return len(c.insts), ok, nil
}

// collectFacts distills per-instruction facts out of the fixpoint
// states for the quickening pass (vm.QuickenMethod): exact receiver /
// array types, and stores whose value category was statically checked.
// Exactness comes only from allocation-site flow (vt.exact) — static
// upper bounds are never recorded as ExactType, because a slot typed
// as class A can hold any value at runtime once SKAny launders through
// a frame slot; baking layout from an upper bound would be unsound.
// Facts are pointer-free (registry indices), so they survive in core's
// cross-VM module verdict cache.
func (c *mver) collectFacts() map[int]vm.InstFact {
	var facts map[int]vm.InstFact
	put := func(pc int, f vm.InstFact) {
		if facts == nil {
			facts = make(map[int]vm.InstFact)
		}
		facts[pc] = f
	}
	exactIdx := func(v vt, kind vm.TypeKind) uint32 {
		if v.kind == vm.SKRef && v.exact && !v.null && v.mt != nil && v.mt.Kind == kind {
			return uint32(v.mt.Index) + 1
		}
		return 0
	}
	for idx := range c.insts {
		in := c.insts[idx]
		st := c.states[idx]
		if st == nil {
			continue // unreachable
		}
		switch in.op {
		case vm.OpCallVirt:
			callee, ok := c.v.MethodByIndex(int(in.arg))
			if !ok || callee.NArgs < 1 || len(st.stack) < callee.NArgs {
				continue
			}
			if e := exactIdx(st.stack[len(st.stack)-callee.NArgs], vm.TKClass); e != 0 {
				put(in.pc, vm.InstFact{ExactType: e})
			}
		case vm.OpLdFld:
			if len(st.stack) < 1 {
				continue
			}
			if e := exactIdx(st.stack[len(st.stack)-1], vm.TKClass); e != 0 {
				put(in.pc, vm.InstFact{ExactType: e})
			}
		case vm.OpStFld:
			if len(st.stack) < 2 {
				continue
			}
			val := st.stack[len(st.stack)-1]
			if e := exactIdx(st.stack[len(st.stack)-2], vm.TKClass); e != 0 {
				put(in.pc, vm.InstFact{ExactType: e, StoreChecked: val.kind != vm.SKAny})
			}
		case vm.OpLdElem:
			if len(st.stack) < 2 {
				continue
			}
			if e := exactIdx(st.stack[len(st.stack)-2], vm.TKArray); e != 0 {
				put(in.pc, vm.InstFact{ExactType: e})
			}
		case vm.OpStElem:
			if len(st.stack) < 3 {
				continue
			}
			val := st.stack[len(st.stack)-1]
			if e := exactIdx(st.stack[len(st.stack)-3], vm.TKArray); e != 0 {
				put(in.pc, vm.InstFact{ExactType: e, StoreChecked: val.kind != vm.SKAny})
			}
		}
	}
	return facts
}

// maxFrame bounds argument and local counts (u16 operand space).
const maxFrame = 0xFFFF

func (c *mver) errAt(idx int, format string, args ...interface{}) *Error {
	pc := 0
	if idx >= 0 && idx < len(c.insts) {
		pc = c.insts[idx].pc
	} else if idx >= len(c.insts) {
		pc = len(c.m.Code)
	}
	return &Error{
		Method: c.m.FullName(),
		Inst:   idx,
		PC:     pc,
		Line:   c.m.LineForPC(pc),
		Msg:    fmt.Sprintf(format, args...),
	}
}

func (c *mver) fail(idx int, format string, args ...interface{}) {
	panic(vfail{c.errAt(idx, format, args...)})
}

// decode splits Code into instructions, validating opcodes, operand
// lengths and branch targets.
func (c *mver) decode() *Error {
	code := c.m.Code
	pc := 0
	for pc < len(code) {
		op := vm.Op(code[pc])
		if !op.Valid() {
			return &Error{Method: c.m.FullName(), Inst: len(c.insts), PC: pc,
				Line: c.m.LineForPC(pc), Msg: fmt.Sprintf("unknown opcode 0x%02x", code[pc])}
		}
		n := op.OperandBytes()
		if pc+1+n > len(code) {
			return &Error{Method: c.m.FullName(), Inst: len(c.insts), PC: pc,
				Line: c.m.LineForPC(pc), Msg: fmt.Sprintf("truncated operand for %s", op.Name())}
		}
		var arg int64
		switch n {
		case 2:
			arg = int64(binary.LittleEndian.Uint16(code[pc+1:]))
		case 4:
			arg = int64(int32(binary.LittleEndian.Uint32(code[pc+1:])))
		case 8:
			arg = int64(binary.LittleEndian.Uint64(code[pc+1:]))
		}
		c.pcIdx[pc] = len(c.insts)
		c.insts = append(c.insts, inst{pc: pc, op: op, arg: arg, size: 1 + n, target: -1})
		pc += 1 + n
	}
	for i := range c.insts {
		in := &c.insts[i]
		if !in.op.Effect().Branch {
			continue
		}
		tgt := in.pc + in.size + int(int32(in.arg))
		if tgt == len(code) {
			in.target = len(c.insts) // branch to the implicit method end
			continue
		}
		j, ok := c.pcIdx[tgt]
		if !ok {
			return c.errAt(i, "branch target pc=%d is not an instruction boundary", tgt)
		}
		in.target = j
	}
	return nil
}

// entry builds the method entry state: empty stack, SKAny arguments,
// uninitialized locals.
func (c *mver) entry() *state {
	st := &state{
		locals: make([]vt, c.m.NLocals),
		args:   make([]vt, c.m.NArgs),
	}
	for i := range st.args {
		st.args[i] = vAny
	}
	return st
}

// fixpoint runs the worklist until states stabilize.
func (c *mver) fixpoint() *Error {
	if len(c.insts) == 0 {
		return c.endCheck(-1, c.entry())
	}
	c.states = make([]*state, len(c.insts))
	c.inWork = make([]bool, len(c.insts))
	c.states[0] = c.entry()
	c.push(0)

	// Each slot's fact can only coarsen a bounded number of times, so
	// the fixpoint terminates; the step cap is a backstop for fuzzed
	// pathological inputs.
	steps, maxSteps := 0, 128*len(c.insts)+1024
	for len(c.work) > 0 {
		if steps++; steps > maxSteps {
			return c.errAt(0, "verification did not converge after %d steps", maxSteps)
		}
		idx := c.pop()
		st := c.states[idx].clone()
		if err := c.step(idx, st); err != nil {
			return err
		}
	}
	return nil
}

func (c *mver) push(idx int) {
	if !c.inWork[idx] {
		c.inWork[idx] = true
		c.work = append(c.work, idx)
	}
}

func (c *mver) pop() int {
	idx := c.work[len(c.work)-1]
	c.work = c.work[:len(c.work)-1]
	c.inWork[idx] = false
	return idx
}

// flowTo propagates st into successor succ (len(insts) = method end).
func (c *mver) flowTo(from, succ int, st *state) *Error {
	if succ == len(c.insts) {
		return c.endCheck(from, st)
	}
	cur := c.states[succ]
	if cur == nil {
		c.states[succ] = st.clone()
		c.push(succ)
		return nil
	}
	if len(cur.stack) != len(st.stack) {
		return c.errAt(succ, "stack depth mismatch on merge: %d vs %d values", len(cur.stack), len(st.stack))
	}
	changed := false
	mergeSlots := func(dst, src []vt, what string) *Error {
		for i := range dst {
			nv, conflict := mergeVT(dst[i], src[i])
			if conflict != "" {
				return c.errAt(succ, "type confusion on merge (%s %d: %s)", what, i, conflict)
			}
			if !eqVT(nv, dst[i]) {
				dst[i] = nv
				changed = true
			}
		}
		return nil
	}
	if err := mergeSlots(cur.stack, st.stack, "stack slot"); err != nil {
		return err
	}
	if err := mergeSlots(cur.locals, st.locals, "local"); err != nil {
		return err
	}
	if err := mergeSlots(cur.args, st.args, "arg"); err != nil {
		return err
	}
	if changed {
		c.push(succ)
	}
	return nil
}

// endCheck validates the state when control reaches the end of the
// code (an implicit void return).
func (c *mver) endCheck(from int, st *state) *Error {
	if c.m.HasRet {
		return c.errAt(from, "control falls off the end of a value-returning method")
	}
	if len(st.stack) != 0 {
		return c.errAt(from, "stack not empty at method end (%d values left)", len(st.stack))
	}
	return nil
}

// --- per-instruction transfer ------------------------------------------------

func (c *mver) popAny(st *state, idx int) vt {
	if len(st.stack) == 0 {
		c.fail(idx, "stack underflow in %s", c.insts[idx].op.Name())
	}
	v := st.stack[len(st.stack)-1]
	st.stack = st.stack[:len(st.stack)-1]
	return v
}

func (c *mver) popKind(st *state, idx int, want vm.StackKind) vt {
	v := c.popAny(st, idx)
	if want != vm.SKAny && v.kind != vm.SKAny && v.kind != want {
		c.fail(idx, "%s operand: expected %s, found %s", c.insts[idx].op.Name(), want, v)
	}
	return v
}

func (c *mver) pushVT(st *state, idx int, v vt) {
	if len(st.stack) >= maxVStack {
		c.fail(idx, "operand stack exceeds %d slots", maxVStack)
	}
	st.stack = append(st.stack, v)
	if d := len(st.stack); d > c.maxDepth {
		c.maxDepth = d
	}
}

// step transfers st across instruction idx and flows the result to
// its successors.
func (c *mver) step(idx int, st *state) *Error {
	in := c.insts[idx]
	eff := in.op.Effect()

	switch in.op {
	case vm.OpLdLoc, vm.OpStLoc, vm.OpLdArg, vm.OpStArg:
		slots, what := st.locals, "local"
		if in.op == vm.OpLdArg || in.op == vm.OpStArg {
			slots, what = st.args, "argument"
		}
		i := int(in.arg)
		if i >= len(slots) {
			c.fail(idx, "%s index %d out of range (%d %ss)", in.op.Name(), i, len(slots), what)
		}
		switch in.op {
		case vm.OpLdLoc, vm.OpLdArg:
			v := slots[i]
			if !v.init {
				c.fail(idx, "%s %d may be read before initialization", what, i)
			}
			c.pushVT(st, idx, v)
		default:
			slots[i] = c.popAny(st, idx)
		}

	case vm.OpDup:
		if len(st.stack) == 0 {
			c.fail(idx, "stack underflow in dup")
		}
		c.pushVT(st, idx, st.stack[len(st.stack)-1])

	case vm.OpCeq:
		b := c.popAny(st, idx)
		a := c.popAny(st, idx)
		// ceq is raw bit equality — identity for references, value
		// equality for ints. On floats that would make NaN equal itself
		// and distinguish +0.0 from -0.0, so float operands are
		// rejected outright rather than silently misbehaving.
		if a.kind == vm.SKFloat || b.kind == vm.SKFloat {
			c.fail(idx, "ceq on float operands compares raw bits (NaN, signed zeros); use ceq.f")
		}
		if a.kind != vm.SKAny && b.kind != vm.SKAny && a.kind != b.kind {
			c.fail(idx, "ceq on mismatched operands (%s vs %s)", a, b)
		}
		c.pushVT(st, idx, vInt)

	case vm.OpBrTrue, vm.OpBrFalse:
		v := c.popAny(st, idx)
		if v.kind == vm.SKFloat {
			c.fail(idx, "branch condition must be int or reference, found float")
		}

	case vm.OpCall, vm.OpCallVirt:
		callee, ok := c.v.MethodByIndex(int(in.arg))
		if !ok {
			c.fail(idx, "call target index %d out of range (%d methods)", in.arg, c.v.NumMethods())
		}
		if in.op == vm.OpCallVirt {
			if !callee.Virtual || callee.Owner == nil {
				c.fail(idx, "callvirt %s: method is not virtual", callee.FullName())
			}
			if callee.NArgs < 1 {
				c.fail(idx, "callvirt %s: virtual method without a receiver", callee.FullName())
			}
		}
		argv := make([]vt, callee.NArgs)
		for i := callee.NArgs - 1; i >= 0; i-- {
			argv[i] = c.popAny(st, idx)
		}
		if in.op == vm.OpCallVirt {
			recv := argv[0]
			if recv.kind == vm.SKInt || recv.kind == vm.SKFloat {
				c.fail(idx, "callvirt receiver must be an object reference, found %s", recv)
			}
			if recv.kind == vm.SKRef && recv.null {
				c.fail(idx, "callvirt receiver is always null")
			}
			if recv.kind == vm.SKRef && recv.mt != nil && recv.mt.Kind == vm.TKClass &&
				!recv.mt.IsSubclassOf(callee.Owner) {
				c.fail(idx, "callvirt receiver %s is not a %s", recv.mt, callee.Owner)
			}
		}
		if callee.HasRet {
			c.pushVT(st, idx, kindVT(callee.RetKind, callee.RetClass))
		}

	case vm.OpIntern:
		fn, ok := c.v.InternalByIndex(int(in.arg))
		if !ok {
			c.fail(idx, "internal call index %d out of range", in.arg)
		}
		sig, hasSig := c.sigs[fn.Name]
		if hasSig && (sig.NArgs != fn.NArgs || (sig.Ret != vm.KindVoid) != fn.HasRet) {
			c.fail(idx, "internal %s: registered arity (%d args, ret=%v) disagrees with the signature table (%d args, ret=%s)",
				fn.Name, fn.NArgs, fn.HasRet, sig.NArgs, sig.Ret)
		}
		for i := 0; i < fn.NArgs; i++ {
			c.popAny(st, idx)
		}
		if fn.HasRet {
			if hasSig {
				c.pushVT(st, idx, kindVT(sig.Ret, nil))
			} else {
				c.pushVT(st, idx, vAny)
			}
		}

	case vm.OpRet:
		if c.m.HasRet {
			c.fail(idx, "ret in a value-returning method (use ret.val)")
		}
		if len(st.stack) != 0 {
			c.fail(idx, "stack not empty at ret (%d values left)", len(st.stack))
		}

	case vm.OpRetVal:
		if !c.m.HasRet {
			c.fail(idx, "ret.val in a void method")
		}
		rv := c.popAny(st, idx)
		c.checkRet(idx, rv)
		if len(st.stack) != 0 {
			c.fail(idx, "stack not empty at ret.val (%d values left)", len(st.stack))
		}

	case vm.OpNewObj:
		mt, ok := c.v.TypeByIndex(int(in.arg))
		if !ok {
			c.fail(idx, "newobj: type index %d out of range", in.arg)
		}
		if mt.Kind != vm.TKClass {
			c.fail(idx, "newobj on array type %s", mt)
		}
		c.pushVT(st, idx, vRefExact(mt))

	case vm.OpNewArr:
		c.popKind(st, idx, vm.SKInt)
		mt, ok := c.v.TypeByIndex(int(in.arg))
		if !ok {
			c.fail(idx, "newarr: type index %d out of range", in.arg)
		}
		if mt.Kind != vm.TKArray {
			c.fail(idx, "newarr on non-array type %s", mt)
		}
		c.pushVT(st, idx, vRefExact(mt))

	case vm.OpNewMD:
		mt, ok := c.v.TypeByIndex(int(in.arg))
		if !ok {
			c.fail(idx, "newmd: type index %d out of range", in.arg)
		}
		if mt.Kind != vm.TKArray || mt.Rank < 2 {
			c.fail(idx, "newmd requires a multidimensional array type, got %s", mt)
		}
		for i := 0; i < mt.Rank; i++ {
			c.popKind(st, idx, vm.SKInt)
		}
		c.pushVT(st, idx, vRefExact(mt))

	case vm.OpLdLen:
		arr := c.popKind(st, idx, vm.SKRef)
		c.checkArrayRef(idx, arr, "ldlen")
		c.pushVT(st, idx, vInt)

	case vm.OpLdElem:
		c.popKind(st, idx, vm.SKInt)
		arr := c.popKind(st, idx, vm.SKRef)
		c.checkArrayRef(idx, arr, "ldelem")
		if amt := arrayMT(arr); amt != nil {
			c.pushVT(st, idx, kindVT(amt.Elem, amt.ElemMT))
		} else {
			c.pushVT(st, idx, vAny)
		}

	case vm.OpStElem:
		val := c.popAny(st, idx)
		c.popKind(st, idx, vm.SKInt)
		arr := c.popKind(st, idx, vm.SKRef)
		c.checkArrayRef(idx, arr, "stelem")
		if amt := arrayMT(arr); amt != nil {
			c.checkStore(idx, val, amt.Elem, amt.ElemMT, fmt.Sprintf("element of %s", amt))
		}

	case vm.OpLdFld, vm.OpStFld:
		var val vt
		if in.op == vm.OpStFld {
			val = c.popAny(st, idx)
		}
		obj := c.popKind(st, idx, vm.SKRef)
		if obj.null {
			c.fail(idx, "%s on a null object", in.op.Name())
		}
		f := c.fieldFor(idx, obj, int(in.arg))
		if in.op == vm.OpLdFld {
			if f != nil {
				c.pushVT(st, idx, kindVT(f.Kind(), f.DeclaredType))
			} else {
				c.pushVT(st, idx, vAny)
			}
		} else if f != nil {
			c.checkStore(idx, val, f.Kind(), f.DeclaredType, "field "+f.Name)
		}

	case vm.OpLdSFld, vm.OpStSFld:
		if int(in.arg) >= c.v.NumGlobals() {
			c.fail(idx, "%s: global index %d out of range (%d globals)", in.op.Name(), in.arg, c.v.NumGlobals())
		}
		if in.op == vm.OpStSFld {
			c.popAny(st, idx)
		} else {
			c.pushVT(st, idx, vAny)
		}

	default:
		// Table-driven opcodes: fixed pops and pushes.
		for _, want := range eff.Pop {
			c.popKind(st, idx, want)
		}
		for _, k := range eff.Push {
			c.pushVT(st, idx, vtOf(k))
		}
	}

	// Successors.
	if eff.Terminator {
		return nil
	}
	if eff.Branch {
		if err := c.flowTo(idx, c.insts[idx].target, st); err != nil {
			return err
		}
		if eff.Uncond {
			return nil
		}
	}
	return c.flowTo(idx, idx+1, st)
}

func vtOf(k vm.StackKind) vt {
	switch k {
	case vm.SKInt:
		return vInt
	case vm.SKFloat:
		return vFloat
	case vm.SKRef:
		// Among table-driven opcodes only ldnull pushes a reference.
		return vNull
	default:
		return vAny
	}
}

// checkRet validates a ret.val operand against the declared result.
func (c *mver) checkRet(idx int, rv vt) {
	if rv.kind == vm.SKAny || c.m.RetKind == vm.KindVoid {
		return // untyped value or untyped signature: accept
	}
	want := kindVT(c.m.RetKind, c.m.RetClass)
	if rv.kind != want.kind {
		c.fail(idx, "ret.val: returning %s from a method declared %s", rv, c.m.RetKind)
	}
	if want.kind == vm.SKRef && want.mt != nil && rv.mt != nil && !rv.null &&
		want.mt.Kind == vm.TKClass && rv.mt.Kind == vm.TKClass && !rv.mt.IsSubclassOf(want.mt) {
		c.fail(idx, "ret.val: returning %s from a method declared %s", rv.mt, want.mt)
	}
}

// checkArrayRef rejects statically known non-arrays (and definite
// nulls) flowing into array operations.
func (c *mver) checkArrayRef(idx int, arr vt, opName string) {
	if arr.null {
		c.fail(idx, "%s on a null array", opName)
	}
	if arr.kind == vm.SKRef && arr.mt != nil && arr.mt.Kind != vm.TKArray && arr.mt != c.v.ObjectMT {
		c.fail(idx, "%s on non-array %s", opName, arr.mt)
	}
}

// arrayMT returns the array type of a slot when statically known.
func arrayMT(arr vt) *vm.MethodTable {
	if arr.kind == vm.SKRef && arr.mt != nil && arr.mt.Kind == vm.TKArray {
		return arr.mt
	}
	return nil
}

// fieldFor resolves a field slot against the static receiver type;
// nil when the receiver type is unknown (the interpreter then checks
// dynamically).
func (c *mver) fieldFor(idx int, obj vt, slot int) *vm.FieldDesc {
	if obj.kind != vm.SKRef || obj.mt == nil || obj.mt == c.v.ObjectMT {
		return nil
	}
	if obj.mt.Kind == vm.TKArray {
		c.fail(idx, "field access on array %s", obj.mt)
	}
	if slot >= len(obj.mt.Fields) {
		c.fail(idx, "field slot %d out of range on %s (%d fields)", slot, obj.mt, len(obj.mt.Fields))
	}
	return &obj.mt.Fields[slot]
}

// checkStore validates a stored value against a declared kind and,
// for reference stores, the declared class: without the class check
// any object could land in a field declared as class A, and the
// DeclaredType fact the verifier reads back at ldfld would be
// meaningless (nil class means the root object type — anything goes).
func (c *mver) checkStore(idx int, val vt, k vm.Kind, class *vm.MethodTable, what string) {
	if val.kind == vm.SKAny {
		return
	}
	want := kindVT(k, nil)
	if val.kind != want.kind {
		c.fail(idx, "storing %s into %s %s", val, k, what)
	}
	if k == vm.KindRef && class != nil && class != c.v.ObjectMT &&
		val.kind == vm.SKRef && !val.null && val.mt != nil && !val.mt.IsSubclassOf(class) {
		c.fail(idx, "storing %s into %s declared %s", val.mt, what, class)
	}
}

// --- static transferability ---------------------------------------------------

// transferPass judges every intern site with transport buffer
// parameters against the recorded entry states. Provably bad buffers
// reject the method; unknown (SKAny, untyped object) buffers merely
// leave the method out of the verified fast path.
func (c *mver) transferPass() (bool, *Error) {
	allProven := true
	for idx := range c.insts {
		in := c.insts[idx]
		if in.op != vm.OpIntern {
			continue
		}
		st := c.states[idx]
		if st == nil {
			continue // unreachable
		}
		fn, _ := c.v.InternalByIndex(int(in.arg))
		sig, hasSig := c.sigs[fn.Name]
		if !hasSig {
			// Unknown FCall: structurally fine, but nothing vouches
			// for its parameters.
			allProven = false
			continue
		}
		for _, bp := range sig.Bufs {
			// Argument i sits at depth NArgs-1-i from the top of the
			// entry stack (the fixpoint already proved depth >= NArgs).
			v := st.stack[len(st.stack)-fn.NArgs+bp.Arg]
			proven, err := c.judgeBuf(idx, fn.Name, bp, v)
			if err != nil {
				return false, err
			}
			if !proven {
				allProven = false
			}
		}
	}
	return allProven, nil
}

// judgeBuf implements the three-valued transferability judgment for
// one buffer argument: provably transferable (true), provably not
// (error), or unknown (false — keep the dynamic check).
//
// The negative judgments are sound even when mt is only an upper
// bound: a subclass inherits every reference field of its ancestors,
// and no array is a subclass of a class, so a bad upper bound means
// every possible runtime type is bad. The positive judgment demands an
// exact type — a slot statically typed as a reference-free class could
// otherwise hold a subclass with reference fields at runtime, and
// skipping the dynamic check would let raw reference bits cross the
// transport (the very §4.2.1 violation the check exists to prevent).
func (c *mver) judgeBuf(idx int, fcall string, bp BufParam, v vt) (bool, *Error) {
	switch v.kind {
	case vm.SKInt, vm.SKFloat:
		return false, c.errAt(idx, "argument %d of %s must be an object reference, found %s", bp.Arg, fcall, v)
	case vm.SKRef:
		if v.null {
			return false, c.errAt(idx, "argument %d of %s is always null", bp.Arg, fcall)
		}
		if v.mt == nil || v.mt == c.v.ObjectMT {
			return false, nil // statically unknown object
		}
		switch bp.Constraint {
		case SimpleArray:
			if !v.mt.IsSimpleArray() {
				return false, c.errAt(idx, "argument %d of %s: %s is not a %s", bp.Arg, fcall, v.mt, bp.Constraint)
			}
		default: // NoRefFields
			if v.mt.HasRefFields() {
				return false, c.errAt(idx, "argument %d of %s: %s contains reference fields and is not transferable (use the object-oriented operations)", bp.Arg, fcall, v.mt)
			}
		}
		if !v.exact {
			return false, nil // upper bound only: keep the dynamic check
		}
		return true, nil
	default:
		return false, nil // SKAny
	}
}
