package vm

import (
	"sort"
	"sync/atomic"
)

// Elder sliding compaction (modern collector only). The legacy §5.2
// collector never compacts the elder generation, so long-lived
// daemons fragment until first-fit allocation falls over. After a
// modern full collection's sweep, when the free list is splintered
// past compactFreeListThreshold (or compaction was requested
// explicitly), live elder objects slide toward the start of their
// range, pinned objects stay as islands nothing crosses, and the free
// list is rebuilt fully coalesced. Forwarding is applied through the
// same visitor pipeline the scavenger uses (visitAllRoots +
// scanRefSlots), so every root surface — handles, globals, thread
// frames, embedder root sets — is covered by construction.
//
// Gap-size safety: every object is ≥ HeaderSize and 8-aligned, and
// after a sweep every free block is ≥ HeaderSize, so the total free
// space in any run between pinned islands is 0 or ≥ HeaderSize.
// Sliding packs each such run tight and leaves the whole freed space
// as one tail gap, which therefore always carries a valid free-block
// header — exact range coverage (CheckInvariants) is preserved.
const compactFreeListThreshold = 64

type gcMove struct{ old, new, size uint32 }

// mergeElderRanges sorts the elder ranges by address and merges
// exactly adjacent ones, so compaction can slide across what used to
// be separate carve/donation/segregation boundaries.
func (h *Heap) mergeElderRanges() {
	sort.Slice(h.elderRanges, func(i, j int) bool {
		return h.elderRanges[i].start < h.elderRanges[j].start
	})
	out := h.elderRanges[:0]
	for _, rg := range h.elderRanges {
		if n := len(out); n > 0 && out[n-1].end == rg.start {
			out[n-1].end = rg.end
		} else {
			out = append(out, rg)
		}
	}
	h.elderRanges = out
}

// compactElder slides live elder objects downward, skipping pinned
// islands, then fixes up every reference and rebuilds a coalesced
// free list. Runs only when the younger generation is empty (the
// cycle's scavenge completed), so the only reference slots are in
// roots and elder objects.
func (h *Heap) compactElder(v *VM, pinned map[Ref]struct{}) {
	h.mergeElderRanges()

	// Pass A: plan. For each range, objects pack toward the lowest
	// free address; a pinned object resets the destination cursor past
	// itself. layout collects every live object's final position so
	// pass D can rebuild the free list without re-walking moved memory.
	var moves []gcMove
	type placed struct{ off, size uint32 }
	layouts := make([][]placed, len(h.elderRanges))
	for i, rg := range h.elderRanges {
		dst := rg.start
		pos := rg.start
		for pos < rg.end {
			size := h.objSize(Ref(pos))
			if size < HeaderSize || pos+size > rg.end {
				break
			}
			if h.mtIndex(Ref(pos)) == freeSentinel {
				pos += size
				continue
			}
			if _, pin := pinned[Ref(pos)]; pin {
				// Pinned island: stays put; nothing slides across it.
				layouts[i] = append(layouts[i], placed{pos, size})
				dst = pos + size
				pos += size
				continue
			}
			if dst != pos {
				moves = append(moves, gcMove{pos, dst, size})
			}
			layouts[i] = append(layouts[i], placed{dst, size})
			dst += size
			pos += size
		}
	}
	if len(moves) == 0 {
		return
	}

	// Pass B: fix up every reference slot through the move table,
	// reading the pre-move layout. moves is ascending in old address
	// (ranges are sorted and each range is walked in order).
	fwd := func(r Ref) Ref {
		i := sort.Search(len(moves), func(i int) bool { return moves[i].old > uint32(r) }) - 1
		if i >= 0 && uint32(r) == moves[i].old {
			return Ref(moves[i].new)
		}
		return r
	}
	for _, rg := range h.elderRanges {
		pos := rg.start
		for pos < rg.end {
			size := h.objSize(Ref(pos))
			if size < HeaderSize || pos+size > rg.end {
				break
			}
			if h.mtIndex(Ref(pos)) != freeSentinel {
				h.scanRefSlots(Ref(pos), fwd)
			}
			pos += size
		}
	}
	v.visitAllRoots(fwd)
	if len(h.remembered) > 0 {
		// Only possible in degraded corner states; keep the keys honest.
		moved := make(map[Ref]struct{}, len(h.remembered))
		for obj := range h.remembered {
			moved[fwd(obj)] = struct{}{}
		}
		h.remembered = moved
	}

	// Pass C: move. Ascending order with dst <= src inside each range
	// makes the overlapping copies safe.
	var movedBytes uint64
	for _, m := range moves {
		copy(h.mem[m.new:m.new+m.size], h.mem[m.old:m.old+m.size])
		movedBytes += uint64(m.size)
	}

	// Pass D: rebuild the free list from the planned layout, fully
	// coalesced — one free block per gap between live runs.
	h.freeList = h.freeList[:0]
	for i, rg := range h.elderRanges {
		freeStart := rg.start
		for _, p := range layouts[i] {
			if p.off > freeStart {
				size := p.off - freeStart
				h.writeFreeBlock(freeStart, size)
				h.freeList = append(h.freeList, freeBlock{freeStart, size})
			}
			freeStart = p.off + p.size
		}
		if rg.end > freeStart {
			size := rg.end - freeStart
			h.writeFreeBlock(freeStart, size)
			h.freeList = append(h.freeList, freeBlock{freeStart, size})
		}
	}

	atomic.AddUint64(&h.Stats.Compactions, 1)
	atomic.AddUint64(&h.Stats.BytesCompacted, movedBytes)
}
