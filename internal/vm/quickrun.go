package vm

import "fmt"

// The quickened dispatch loop. runQuick executes one frame's quickened
// body; run() (interp.go) remains the driver, so mixed stacks — a
// quickened caller invoking a baseline callee or vice versa — work
// frame by frame. Semantics must match interp.go observably: results,
// traps (kind, detail, method, pc), GC-poll placement and step-budget
// charges are bit-identical, which the differential suite asserts.
//
// Safepoint discipline: the loop caches fr.stack in a local (pushes
// stay allocation-free thanks to the MaxStack preallocation) and
// writes it back before every GC-capable point — managed calls,
// FCalls, allocations, backward-branch polls — so collections always
// see the frame's true root set. locals/args are mutated in place and
// never reallocated, so they need no writeback. fr.pc is committed
// before any operation that can raise a trap out of line (bounds
// panics, allocation failure), keeping trap attribution exact.

// runQuick executes fr until it returns, pushes a managed callee, or
// traps. Return contract: (rv, hasRV, returned, err) — when returned,
// run() pops the frame and propagates rv; when not returned and err is
// nil, a callee frame was pushed and fr resumes later at fr.qpc.
func (t *Thread) runQuick(fr *callFrame) (Value, bool, bool, error) {
	insts := fr.method.quick.insts
	h := t.vm.Heap
	stack := fr.stack
	locals := fr.locals
	args := fr.args
	qpc := fr.qpc

	for qpc < len(insts) {
		q := &insts[qpc]
		switch q.op {
		case qNop:

		case qLdc:
			stack = append(stack, Value{Bits: q.imm})
		case qLdNull:
			stack = append(stack, Value{IsRef: true})

		case qLdLoc:
			stack = append(stack, locals[q.a])
		case qStLoc:
			locals[q.a] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case qLdArg:
			stack = append(stack, args[q.a])
		case qStArg:
			args[q.a] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]

		case qDup:
			stack = append(stack, stack[len(stack)-1])
		case qPop:
			stack = stack[:len(stack)-1]

		case qAdd:
			n := len(stack)
			stack[n-2] = IntValue(stack[n-2].Int() + stack[n-1].Int())
			stack = stack[:n-1]
		case qSub:
			n := len(stack)
			stack[n-2] = IntValue(stack[n-2].Int() - stack[n-1].Int())
			stack = stack[:n-1]
		case qMul:
			n := len(stack)
			stack[n-2] = IntValue(stack[n-2].Int() * stack[n-1].Int())
			stack = stack[:n-1]
		case qDiv:
			n := len(stack)
			b := stack[n-1].Int()
			if b == 0 {
				fr.stack = stack[:n-2]
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("division by zero", "div")
			}
			stack[n-2] = IntValue(stack[n-2].Int() / b)
			stack = stack[:n-1]
		case qRem:
			n := len(stack)
			b := stack[n-1].Int()
			if b == 0 {
				fr.stack = stack[:n-2]
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("division by zero", "rem")
			}
			stack[n-2] = IntValue(stack[n-2].Int() % b)
			stack = stack[:n-1]
		case qAnd:
			n := len(stack)
			stack[n-2] = IntValue(stack[n-2].Int() & stack[n-1].Int())
			stack = stack[:n-1]
		case qOr:
			n := len(stack)
			stack[n-2] = IntValue(stack[n-2].Int() | stack[n-1].Int())
			stack = stack[:n-1]
		case qXor:
			n := len(stack)
			stack[n-2] = IntValue(stack[n-2].Int() ^ stack[n-1].Int())
			stack = stack[:n-1]
		case qShl:
			n := len(stack)
			stack[n-2] = IntValue(stack[n-2].Int() << (uint64(stack[n-1].Int()) & 63))
			stack = stack[:n-1]
		case qShr:
			n := len(stack)
			stack[n-2] = IntValue(stack[n-2].Int() >> (uint64(stack[n-1].Int()) & 63))
			stack = stack[:n-1]
		case qNeg:
			n := len(stack)
			stack[n-1] = IntValue(-stack[n-1].Int())
		case qNot:
			n := len(stack)
			stack[n-1] = IntValue(^stack[n-1].Int())

		case qAddF:
			n := len(stack)
			stack[n-2] = FloatValue(stack[n-2].Float() + stack[n-1].Float())
			stack = stack[:n-1]
		case qSubF:
			n := len(stack)
			stack[n-2] = FloatValue(stack[n-2].Float() - stack[n-1].Float())
			stack = stack[:n-1]
		case qMulF:
			n := len(stack)
			stack[n-2] = FloatValue(stack[n-2].Float() * stack[n-1].Float())
			stack = stack[:n-1]
		case qDivF:
			n := len(stack)
			stack[n-2] = FloatValue(stack[n-2].Float() / stack[n-1].Float())
			stack = stack[:n-1]
		case qNegF:
			n := len(stack)
			stack[n-1] = FloatValue(-stack[n-1].Float())

		case qCeq:
			n := len(stack)
			stack[n-2] = BoolValue(stack[n-2].Bits == stack[n-1].Bits)
			stack = stack[:n-1]
		case qClt:
			n := len(stack)
			stack[n-2] = BoolValue(stack[n-2].Int() < stack[n-1].Int())
			stack = stack[:n-1]
		case qCgt:
			n := len(stack)
			stack[n-2] = BoolValue(stack[n-2].Int() > stack[n-1].Int())
			stack = stack[:n-1]
		case qCeqF:
			n := len(stack)
			stack[n-2] = BoolValue(stack[n-2].Float() == stack[n-1].Float())
			stack = stack[:n-1]
		case qCltF:
			n := len(stack)
			stack[n-2] = BoolValue(stack[n-2].Float() < stack[n-1].Float())
			stack = stack[:n-1]
		case qCgtF:
			n := len(stack)
			stack[n-2] = BoolValue(stack[n-2].Float() > stack[n-1].Float())
			stack = stack[:n-1]

		case qConvI2F:
			n := len(stack)
			stack[n-1] = FloatValue(float64(stack[n-1].Int()))
		case qConvF2I:
			n := len(stack)
			stack[n-1] = IntValue(convF2I(stack[n-1].Float()))

		case qBr:
			if q.back {
				if t.stepBudget != 0 {
					t.stepBudget--
					if t.stepBudget == 0 {
						fr.stack = stack
						fr.pc = int(q.pc)
						return Value{}, false, false, fr.trap("step budget exhausted", "backward branch")
					}
				}
				fr.stack = stack
				t.PollGC()
			}
			qpc = int(q.t)
			continue
		case qBrTrue, qBrFalse:
			c := stack[len(stack)-1].Bool()
			stack = stack[:len(stack)-1]
			if c == (q.op == qBrTrue) {
				if q.back {
					if t.stepBudget != 0 {
						t.stepBudget--
						if t.stepBudget == 0 {
							fr.stack = stack
							fr.pc = int(q.pc)
							return Value{}, false, false, fr.trap("step budget exhausted", "backward branch")
						}
					}
					fr.stack = stack
					t.PollGC()
				}
				qpc = int(q.t)
				continue
			}
		case qCmpBr:
			n := len(stack)
			b, a := stack[n-1], stack[n-2]
			stack = stack[:n-2]
			var cond bool
			switch q.a {
			case 0:
				cond = a.Bits == b.Bits
			case 1:
				cond = a.Int() < b.Int()
			case 2:
				cond = a.Int() > b.Int()
			case 3:
				cond = a.Float() == b.Float()
			case 4:
				cond = a.Float() < b.Float()
			default:
				cond = a.Float() > b.Float()
			}
			if cond == (q.b != 0) {
				if q.back {
					if t.stepBudget != 0 {
						t.stepBudget--
						if t.stepBudget == 0 {
							fr.stack = stack
							fr.pc = int(q.pc2) // the branch half charges, as baseline does
							return Value{}, false, false, fr.trap("step budget exhausted", "backward branch")
						}
					}
					fr.stack = stack
					t.PollGC()
				}
				qpc = int(q.t)
				continue
			}
		case qIncLoc:
			locals[q.a] = IntValue(locals[q.a].Int() + int64(q.imm))

		case qCall:
			callee := q.m
			n := callee.NArgs
			cargs := make([]Value, n)
			copy(cargs, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			fr.stack = stack
			if err := t.qpushCall(fr, callee, cargs, qpc, q.pc); err != nil {
				return Value{}, false, false, err
			}
			return Value{}, false, false, nil
		case qLdArgCall:
			callee := q.m
			n := callee.NArgs
			cargs := make([]Value, n)
			cargs[n-1] = args[q.a] // the fused ldarg pushes the last argument
			copy(cargs[:n-1], stack[len(stack)-(n-1):])
			stack = stack[:len(stack)-(n-1)]
			fr.stack = stack
			if err := t.qpushCall(fr, callee, cargs, qpc, q.pc2); err != nil {
				return Value{}, false, false, err
			}
			return Value{}, false, false, nil
		case qCallExact:
			callee := q.m
			n := callee.NArgs
			cargs := make([]Value, n)
			copy(cargs, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			fr.stack = stack
			// Exactness fixes the implementation but not nullness.
			if !cargs[0].IsRef || cargs[0].Bits == 0 {
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("null reference", "callvirt receiver")
			}
			if err := t.qpushCall(fr, callee, cargs, qpc, q.pc); err != nil {
				return Value{}, false, false, err
			}
			return Value{}, false, false, nil
		case qCallVirt:
			named := q.m
			if !named.Virtual || named.Owner == nil {
				fr.stack = stack
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("callvirt on non-virtual", named.FullName())
			}
			n := named.NArgs
			cargs := make([]Value, n)
			copy(cargs, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			fr.stack = stack
			recv := cargs[0]
			if !recv.IsRef || recv.Bits == 0 {
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("null reference", "callvirt receiver")
			}
			rmt := h.MT(recv.Ref())
			impl := q.cimpl
			if rmt != q.cmt {
				impl = lookupVSlot(rmt, named.VSlot)
				if impl == nil {
					fr.pc = int(q.pc)
					return Value{}, false, false, fr.trap("bad vtable slot", named.FullName())
				}
				q.cmt, q.cimpl = rmt, impl
			}
			if err := t.qpushCall(fr, impl, cargs, qpc, q.pc); err != nil {
				return Value{}, false, false, err
			}
			return Value{}, false, false, nil

		case qIntern:
			fn := &t.vm.internals[q.a]
			n := fn.NArgs
			cargs := make([]Value, n)
			copy(cargs, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			fr.stack = stack
			fr.pc = int(q.pc)
			fr.qpc = qpc + 1 // an FCall may re-enter managed code
			t.inFCall = true
			ret, ferr := fn.Fn(t, cargs)
			t.inFCall = false
			if ferr != nil {
				return Value{}, false, false, fmt.Errorf("vm: internal call %s: %w", fn.Name, ferr)
			}
			if fn.HasRet {
				stack = append(stack, ret)
			}

		case qRet:
			return Value{}, false, true, nil
		case qRetVal:
			return stack[len(stack)-1], true, true, nil

		case qNewObj:
			fr.stack = stack
			fr.pc = int(q.pc)
			ref, aerr := h.AllocClass(q.mt)
			if aerr != nil {
				return Value{}, false, false, aerr
			}
			stack = append(stack, RefValue(ref))
		case qNewArr:
			n := stack[len(stack)-1].Int()
			stack = stack[:len(stack)-1]
			if n < 0 {
				fr.stack = stack
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("negative array length", fmt.Sprintf("%d", n))
			}
			fr.stack = stack
			fr.pc = int(q.pc)
			ref, aerr := h.AllocArray(q.mt, int(n))
			if aerr != nil {
				return Value{}, false, false, aerr
			}
			stack = append(stack, RefValue(ref))
		case qNewMD:
			dims := make([]int, q.mt.Rank)
			for i := q.mt.Rank - 1; i >= 0; i-- {
				d := stack[len(stack)-1].Int()
				stack = stack[:len(stack)-1]
				if d < 0 {
					fr.stack = stack
					fr.pc = int(q.pc)
					return Value{}, false, false, fr.trap("negative array length", fmt.Sprintf("%d", d))
				}
				dims[i] = int(d)
			}
			fr.stack = stack
			fr.pc = int(q.pc)
			ref, aerr := h.AllocMultiDim(q.mt, dims)
			if aerr != nil {
				return Value{}, false, false, aerr
			}
			stack = append(stack, RefValue(ref))

		case qLdLen:
			arr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !arr.IsRef || arr.Bits == 0 {
				fr.stack = stack
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("null reference", "ldlen")
			}
			stack = append(stack, IntValue(int64(h.Length(arr.Ref()))))

		case qLdElem, qLdElemK:
			n := len(stack)
			i := stack[n-1].Int()
			arr := stack[n-2]
			stack = stack[:n-2]
			if !arr.IsRef || arr.Bits == 0 {
				fr.stack = stack
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("null reference", "ldelem")
			}
			fr.stack = stack
			fr.pc = int(q.pc) // bounds panic unwinds to run()'s recover
			mt := q.mt
			if q.op == qLdElem {
				mt = h.MT(arr.Ref())
			}
			h.boundsCheck(arr.Ref(), int(i))
			bits := h.loadKind(h.elemOff(arr.Ref(), mt, int(i)), mt.Elem)
			stack = append(stack, elemValue(mt.Elem, bits))
		case qStElem, qStElemK:
			n := len(stack)
			val := stack[n-1]
			i := stack[n-2].Int()
			arr := stack[n-3]
			stack = stack[:n-3]
			if !arr.IsRef || arr.Bits == 0 {
				fr.stack = stack
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("null reference", "stelem")
			}
			mt := q.mt
			if q.op == qStElem {
				mt = h.MT(arr.Ref())
			}
			if q.b == 0 && mt.Elem == KindRef && !val.IsRef {
				fr.stack = stack
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("type mismatch", "storing scalar into reference array")
			}
			fr.stack = stack
			fr.pc = int(q.pc)
			h.boundsCheck(arr.Ref(), int(i))
			h.storeKind(h.elemOff(arr.Ref(), mt, int(i)), mt.Elem, storeBits(mt.Elem, val))
			if mt.Elem == KindRef {
				h.recordWrite(arr.Ref(), Ref(val.Bits))
			}

		case qLdFld, qLdFldD:
			obj := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !obj.IsRef || obj.Bits == 0 {
				fr.stack = stack
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("null reference", "ldfld")
			}
			f := q.fld
			if q.op == qLdFld {
				mt := h.MT(obj.Ref())
				if int(q.a) >= len(mt.Fields) {
					fr.stack = stack
					fr.pc = int(q.pc)
					return Value{}, false, false, fr.trap("bad field slot", fmt.Sprintf("%d on %s", q.a, mt))
				}
				f = &mt.Fields[q.a]
			}
			if f.IsRef() {
				stack = append(stack, RefValue(h.GetRef(obj.Ref(), f)))
			} else {
				stack = append(stack, elemValue(f.Kind(), h.GetScalar(obj.Ref(), f)))
			}
		case qLdLocFld, qLdLocFldD:
			obj := locals[q.a]
			if !obj.IsRef || obj.Bits == 0 {
				fr.stack = stack
				fr.pc = int(q.pc2) // the ldfld half faults, not the fusion head
				return Value{}, false, false, fr.trap("null reference", "ldfld")
			}
			f := q.fld
			if q.op == qLdLocFld {
				mt := h.MT(obj.Ref())
				if int(q.b) >= len(mt.Fields) {
					fr.stack = stack
					fr.pc = int(q.pc2)
					return Value{}, false, false, fr.trap("bad field slot", fmt.Sprintf("%d on %s", q.b, mt))
				}
				f = &mt.Fields[q.b]
			}
			if f.IsRef() {
				stack = append(stack, RefValue(h.GetRef(obj.Ref(), f)))
			} else {
				stack = append(stack, elemValue(f.Kind(), h.GetScalar(obj.Ref(), f)))
			}
		case qStFld, qStFldD:
			n := len(stack)
			val := stack[n-1]
			obj := stack[n-2]
			stack = stack[:n-2]
			if !obj.IsRef || obj.Bits == 0 {
				fr.stack = stack
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("null reference", "stfld")
			}
			f := q.fld
			if q.op == qStFld {
				mt := h.MT(obj.Ref())
				if int(q.a) >= len(mt.Fields) {
					fr.stack = stack
					fr.pc = int(q.pc)
					return Value{}, false, false, fr.trap("bad field slot", fmt.Sprintf("%d on %s", q.a, mt))
				}
				f = &mt.Fields[q.a]
			}
			if q.b == 0 && f.IsRef() && !val.IsRef {
				fr.stack = stack
				fr.pc = int(q.pc)
				return Value{}, false, false, fr.trap("type mismatch", "storing scalar into reference field "+f.Name)
			}
			h.SetField(obj.Ref(), f, storeBits(f.Kind(), val))

		case qLdSFld:
			stack = append(stack, t.vm.GetGlobal(int(q.a)))
		case qStSFld:
			t.vm.SetGlobal(int(q.a), stack[len(stack)-1])
			stack = stack[:len(stack)-1]

		default:
			fr.stack = stack
			fr.pc = int(q.pc)
			return Value{}, false, false, fr.trap("bad opcode", fmt.Sprintf("q%d", q.op))
		}
		qpc++
	}
	// Fell off the end: void return, as in the baseline loop.
	return Value{}, false, true, nil
}

// qpushCall is the shared managed-call tail of the quickened loop:
// depth check, step-budget charge, frame push and the GC poll — in
// the same order, with the same trap attribution, as OpCall in the
// baseline loop. The caller must have written fr.stack back first.
func (t *Thread) qpushCall(fr *callFrame, callee *Method, cargs []Value, qpc int, pc int32) error {
	if len(t.callStack) >= maxCallDepth {
		return ErrCallDepth
	}
	if t.stepBudget != 0 {
		t.stepBudget--
		if t.stepBudget == 0 {
			fr.pc = int(pc)
			return fr.trap("step budget exhausted", callee.FullName())
		}
	}
	fr.qpc = qpc + 1
	fr.pc = int(pc)
	t.pushFrameOwned(callee, cargs)
	t.PollGC()
	return nil
}
