package vm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestQuickAllocSizes is a property test: arrays of arbitrary sizes
// allocate 8-aligned, zeroed, and correctly sized.
func TestQuickAllocSizes(t *testing.T) {
	v := New(Config{Heap: HeapConfig{YoungSize: 256 << 10, InitialElder: 1 << 20, ArenaMax: 256 << 20}})
	at := v.ArrayType(KindUint8, nil, 1)
	f := func(n uint16) bool {
		length := int(n % 5000)
		ref, err := v.Heap.AllocArray(at, length)
		if err != nil {
			return false
		}
		if v.Heap.Length(ref) != length {
			return false
		}
		if v.Heap.DataSize(ref) != length {
			return false
		}
		if uint32(ref)%8 != 0 {
			return false
		}
		for _, b := range v.Heap.DataBytes(ref) {
			if b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickGCChecksum allocates arrays with checksummed content under
// random collection pressure and verifies no byte is ever lost or
// changed.
func TestQuickGCChecksum(t *testing.T) {
	v := New(Config{Heap: HeapConfig{YoungSize: 16 << 10, InitialElder: 128 << 10, ArenaMax: 128 << 20}})
	rng := rand.New(rand.NewSource(99))
	v.WithThread("t", func(th *Thread) {
		guard := &RefRoots{Refs: make([]Ref, 32)}
		sums := make([]uint64, 32)
		lens := make([]int, 32)
		v.AddRootProvider(guard)
		defer v.RemoveRootProvider(guard)
		for round := 0; round < 200; round++ {
			i := rng.Intn(len(guard.Refs))
			n := rng.Intn(700)
			data := make([]byte, n)
			var sum uint64
			for j := range data {
				data[j] = byte(rng.Intn(256))
				sum = sum*31 + uint64(data[j])
			}
			ref, err := v.Heap.NewUint8Array(data)
			if err != nil {
				t.Fatal(err)
			}
			guard.Refs[i], sums[i], lens[i] = ref, sum, n
			if rng.Intn(4) == 0 {
				if rng.Intn(8) == 0 {
					th.CollectFull()
				} else {
					th.CollectYoung()
				}
			}
			// Verify every live array.
			for k, r := range guard.Refs {
				if r == NullRef {
					continue
				}
				got := v.Heap.Uint8Slice(r)
				if len(got) != lens[k] {
					t.Fatalf("round %d: slot %d length %d, want %d", round, k, len(got), lens[k])
				}
				var s uint64
				for _, b := range got {
					s = s*31 + uint64(b)
				}
				if s != sums[k] {
					t.Fatalf("round %d: slot %d checksum mismatch", round, k)
				}
			}
		}
	})
}

// TestMultiThreadVMSharedHeap runs two managed threads in one VM,
// interleaving allocation-heavy work. The cooperative safepoint
// discipline must keep the shared heap consistent.
func TestMultiThreadVMSharedHeap(t *testing.T) {
	v := New(Config{Heap: HeapConfig{YoungSize: 32 << 10, InitialElder: 256 << 10, ArenaMax: 128 << 20}})
	const perThread = 300
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := v.StartThread(fmt.Sprintf("worker%d", id))
			defer th.End()
			var keep Ref
			pop := th.PushFrame(&keep)
			defer pop()
			marker := []int32{int32(id * 1000)}
			var err error
			keep, err = v.Heap.NewInt32Array(marker)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perThread; i++ {
				// Churn garbage, occasionally yield.
				if _, err := v.Heap.NewUint8Array(make([]byte, 128)); err != nil {
					errs <- err
					return
				}
				th.PollGC()
				if got := v.Heap.Int32Slice(keep); got[0] != int32(id*1000) {
					errs <- fmt.Errorf("thread %d: marker corrupted to %d at iter %d", id, got[0], i)
					return
				}
			}
			errs <- nil
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if v.Heap.Stats.Scavenges == 0 {
		t.Error("no collections; test ineffective")
	}
}

func TestElderDirectAllocationSurvivesScavenge(t *testing.T) {
	v := gcVM() // 16 KiB nursery
	v.WithThread("t", func(th *Thread) {
		// 12 KiB > nursery/2: allocated directly in elder space.
		big, err := v.Heap.NewUint8Array(make([]byte, 12<<10))
		if err != nil {
			t.Fatal(err)
		}
		if v.Heap.IsYoung(big) {
			t.Fatal("big object in nursery")
		}
		v.Heap.DataBytes(big)[0] = 0xEE
		before := big
		pop := th.PushFrame(&big)
		th.CollectYoung()
		pop()
		if big != before {
			t.Error("elder object moved by scavenge")
		}
		if v.Heap.DataBytes(big)[0] != 0xEE {
			t.Error("elder content lost")
		}
	})
}

func TestConditionalPinSurvivesMultipleCycles(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		ref, _ := v.Heap.NewInt32Array([]int32{4})
		active := true
		v.Heap.AddCondPin(ref, func() bool { return active })
		for i := 0; i < 5; i++ {
			th.CollectYoung()
			if !v.Heap.Valid(ref) || v.Heap.Int32Slice(ref)[0] != 4 {
				t.Fatalf("cycle %d: conditionally pinned object lost", i)
			}
			if v.Heap.CondPinCount() != 1 {
				t.Fatalf("cycle %d: request dropped early", i)
			}
		}
		active = false
		th.CollectYoung()
		if v.Heap.CondPinCount() != 0 {
			t.Error("request survived completion")
		}
	})
}

func TestNestedExplicitPins(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		ref, _ := v.Heap.NewInt32Array([]int32{1})
		v.Heap.Pin(ref)
		v.Heap.Pin(ref)
		v.Heap.Unpin(ref)
		if !v.Heap.Pinned(ref) {
			t.Fatal("nested pin released early")
		}
		before := ref
		pop := th.PushFrame(&ref)
		th.CollectYoung()
		pop()
		if ref != before {
			t.Error("still-pinned object moved")
		}
		v.Heap.Unpin(ref)
		if v.Heap.Pinned(ref) {
			t.Error("pin not fully released")
		}
	})
}

func TestWriteBarrierElderArrayToYoung(t *testing.T) {
	// Reference written into an ELDER OBJECT ARRAY must keep a young
	// referent alive (the barrier covers stelem, not only stfld).
	v := gcVM()
	node := nodeClass(v)
	arrT := v.ArrayType(KindRef, node, 1)
	v.WithThread("t", func(th *Thread) {
		arr, _ := v.Heap.AllocArray(arrT, 4)
		pop := th.PushFrame(&arr)
		defer pop()
		th.CollectYoung() // promote the array
		if v.Heap.IsYoung(arr) {
			t.Fatal("array not promoted")
		}
		young, _ := v.Heap.AllocClass(node)
		v.Heap.SetScalar(young, node.FieldByName("id"), 77)
		v.Heap.SetElemRef(arr, 2, young)
		th.CollectYoung()
		got := v.Heap.GetElemRef(arr, 2)
		if got == NullRef {
			t.Fatal("young referent lost (stelem barrier missing)")
		}
		if v.Heap.GetScalar(got, node.FieldByName("id")) != 77 {
			t.Error("referent corrupted")
		}
	})
}

func TestManyHandlesAcrossGC(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		const n = 200
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			ref, err := v.Heap.NewInt32Array([]int32{int32(i)})
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = v.Handles.Alloc(ref)
			if i%37 == 0 {
				th.CollectYoung()
			}
		}
		th.CollectFull()
		for i, h := range handles {
			ref := v.Handles.Get(h)
			if ref == NullRef {
				t.Fatalf("handle %d lost", i)
			}
			if got := v.Heap.Int32Slice(ref)[0]; got != int32(i) {
				t.Fatalf("handle %d content %d", i, got)
			}
			v.Handles.Free(h)
		}
		if v.Handles.Live() != 0 {
			t.Errorf("%d live handles after free", v.Handles.Live())
		}
	})
}

func TestGCStatsAccounting(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		var keep Ref
		pop := th.PushFrame(&keep)
		defer pop()
		keep, _ = v.Heap.NewInt32Array(make([]int32, 100))
		th.CollectYoung()
		s := v.Heap.Stats
		if s.Scavenges != 1 {
			t.Errorf("scavenges %d", s.Scavenges)
		}
		if s.BytesPromoted == 0 {
			t.Error("no bytes promoted despite live object")
		}
		th.CollectFull()
		if v.Heap.Stats.FullGCs != 1 {
			t.Errorf("full GCs %d", v.Heap.Stats.FullGCs)
		}
	})
}

func TestCheckInvariantsCleanHeap(t *testing.T) {
	v := gcVM()
	node := nodeClass(v)
	v.WithThread("t", func(th *Thread) {
		guard := &RefRoots{Refs: make([]Ref, 10)}
		v.AddRootProvider(guard)
		defer v.RemoveRootProvider(guard)
		for i := range guard.Refs {
			n, _ := v.Heap.AllocClass(node)
			guard.Refs[i] = n
			arr, _ := v.Heap.NewInt32Array([]int32{int32(i)})
			v.Heap.SetRef(guard.Refs[i], node.FieldByName("data"), arr)
		}
		if err := v.Heap.CheckInvariants(); err != nil {
			t.Fatalf("before GC: %v", err)
		}
		th.CollectYoung()
		if err := v.Heap.CheckInvariants(); err != nil {
			t.Fatalf("after scavenge: %v", err)
		}
		th.CollectFull()
		if err := v.Heap.CheckInvariants(); err != nil {
			t.Fatalf("after full GC: %v", err)
		}
	})
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		node := nodeClass(v)
		guard := &RefRoots{Refs: make([]Ref, 1)}
		v.AddRootProvider(guard)
		defer v.RemoveRootProvider(guard)
		n, _ := v.Heap.AllocClass(node)
		guard.Refs[0] = n
		th.CollectYoung() // promote to elder so the walk covers it
		n = guard.Refs[0]
		// Forge a raw write over the object's next field with a bogus
		// reference — exactly the §2.4 hazard the integrity checks
		// prevent the public API from causing.
		f := node.FieldByName("next")
		v.Heap.putU32(uint32(n)+HeaderSize+f.Offset(), 0xDEAD00)
		if err := v.Heap.CheckInvariants(); err == nil {
			t.Fatal("verifier missed a corrupted reference field")
		}
	})
}

func TestGCStressWithVerifier(t *testing.T) {
	v := gcVM()
	node := nodeClass(v)
	rng := rand.New(rand.NewSource(5))
	fData, fNext := node.FieldByName("data"), node.FieldByName("next")
	v.WithThread("t", func(th *Thread) {
		guard := &RefRoots{Refs: make([]Ref, 16)}
		v.AddRootProvider(guard)
		defer v.RemoveRootProvider(guard)
		for round := 0; round < 30; round++ {
			for k := 0; k < 8; k++ {
				i := rng.Intn(len(guard.Refs))
				n, err := v.Heap.AllocClass(node)
				if err != nil {
					t.Fatal(err)
				}
				guard.Refs[i] = n
				pop := th.PushFrame(&guard.Refs[i])
				arr, err := v.Heap.NewUint8Array(make([]byte, rng.Intn(300)))
				if err != nil {
					t.Fatal(err)
				}
				v.Heap.SetRef(guard.Refs[i], fData, arr)
				j := rng.Intn(len(guard.Refs))
				if guard.Refs[j] != NullRef {
					v.Heap.SetRef(guard.Refs[i], fNext, guard.Refs[j])
				}
				pop()
			}
			if round%3 == 0 {
				th.CollectYoung()
			}
			if round%7 == 0 {
				th.CollectFull()
			}
			if err := v.Heap.CheckInvariants(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	})
}

func TestPauseAccounting(t *testing.T) {
	v := gcVM()
	v.WithThread("t", func(th *Thread) {
		th.CollectYoung()
		th.CollectFull()
	})
	if v.Heap.Stats.PauseNs == 0 {
		t.Error("no pause time recorded")
	}
	if v.Heap.Stats.MaxPauseNs == 0 || v.Heap.Stats.MaxPauseNs > v.Heap.Stats.PauseNs {
		t.Errorf("max pause %d, total %d", v.Heap.Stats.MaxPauseNs, v.Heap.Stats.PauseNs)
	}
}

func TestDegradedNurseryAfterArenaExhaustion(t *testing.T) {
	// Force repeated donations (pinned survivors) on a tiny arena
	// until a fresh nursery cannot be carved; the VM must keep
	// serving allocations from the elder space rather than crash.
	v := New(Config{Heap: HeapConfig{YoungSize: 8 << 10, InitialElder: 16 << 10, ArenaMax: 96 << 10}})
	v.WithThread("t", func(th *Thread) {
		guard := &RefRoots{}
		v.AddRootProvider(guard)
		defer v.RemoveRootProvider(guard)
		var pinned []Ref
		for i := 0; i < 12; i++ {
			ref, err := v.Heap.NewInt32Array([]int32{int32(i)})
			if err != nil {
				break // arena exhausted during setup: fine
			}
			guard.Refs = append(guard.Refs, ref)
			if v.Heap.IsYoung(ref) {
				v.Heap.Pin(ref)
				pinned = append(pinned, guard.Refs[len(guard.Refs)-1])
			}
			th.CollectYoung() // donation each cycle with a pinned survivor
		}
		// Whatever state the heap reached, it must still satisfy
		// invariants, preserve pinned content, and serve allocations
		// (or return clean OOM).
		if err := v.Heap.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		for i, r := range guard.Refs {
			if got := v.Heap.Int32Slice(r)[0]; got != int32(i) {
				t.Fatalf("object %d content %d", i, got)
			}
		}
		if _, err := v.Heap.NewInt32Array([]int32{99}); err != nil && !errors.Is(err, ErrOutOfMemory) {
			t.Fatalf("allocation after degradation: %v", err)
		}
		_ = pinned
	})
}
