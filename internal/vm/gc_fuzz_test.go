package vm

// Heap invariant fuzzing: FuzzHeapOps decodes arbitrary bytes into a
// bounded op script (alloc / link / mutate / pin / unpin / cond-pin /
// collect-young / collect-full / compact), replays it against both
// the legacy serial collector and the modern parallel collector, and
// runs Heap.CheckInvariants after every collection. The two worlds
// must also agree on the final logical heap graph — collections may
// happen at different times (the modern nursery can be half-sized
// after pinned-block segregation), but the reachable object graph is
// placement-independent.
//
// The seed corpus encodes the shapes that break naive pinned-block
// segregation: pin storms, dense pins past the segregation fallback
// threshold, cond-pin flip-flops, and compaction after heavy churn.

import (
	"fmt"
	"strings"
	"testing"
)

// decodeHeapOps maps 4 bytes to one op, clamping operands the same
// way genScript does so every input is a valid script.
func decodeHeapOps(data []byte) []diffOp {
	var ops []diffOp
	for i := 0; i+4 <= len(data) && len(ops) < 200; i += 4 {
		k := diffOpKind(data[i] % 13)
		a, b, c := int(data[i+1]), int(data[i+2]), int(data[i+3])
		op := diffOp{kind: k}
		switch k {
		case dAllocNode:
			op.a, op.b = a%diffRootSlots, b
		case dAllocIntArr:
			op.a, op.b, op.c = a%diffRootSlots, 1+b%48, c
		case dAllocRefArr:
			op.a, op.b = a%diffRootSlots, 1+b%8
		case dLinkField:
			op.a, op.b, op.c = a%diffRootSlots, b%3, c%diffRootSlots
		case dLinkElem:
			op.a, op.b, op.c = a%diffRootSlots, b%8, c%diffRootSlots
		case dStoreInt:
			op.a, op.b = a%diffRootSlots, b
		case dDrop, dPin:
			op.a = a % diffRootSlots
		case dUnpin:
			op.a = a % 16
		case dCondPin:
			op.a, op.b = a%diffRootSlots, 1+b%3
		}
		ops = append(ops, op)
	}
	return ops
}

// encHeapOps is the inverse used to build the seed corpus: it undoes
// the 1+x%N clamps so decodeHeapOps(encHeapOps(ops)) == ops for any
// canonical op list.
func encHeapOps(ops []diffOp) []byte {
	var data []byte
	for _, op := range ops {
		b := op.b
		switch op.kind {
		case dAllocIntArr, dAllocRefArr, dCondPin:
			b--
		}
		data = append(data, byte(op.kind), byte(op.a), byte(b), byte(op.c))
	}
	return data
}

func fuzzSeedCorpus() [][]byte {
	var seeds [][]byte

	// Pin storm: every root pinned, then scavenge + full.
	var storm []diffOp
	for i := 0; i < 8; i++ {
		storm = append(storm, diffOp{kind: dAllocNode, a: i, b: i}, diffOp{kind: dPin, a: i})
	}
	storm = append(storm, diffOp{kind: dCollectYoung}, diffOp{kind: dCollectFull})
	seeds = append(seeds, encHeapOps(storm))

	// Dense pins: enough pinned bytes to cross the segregation
	// fallback threshold (pinned*4 > block), forcing the modern
	// collector down the legacy donation path.
	var dense []diffOp
	for i := 0; i < 40; i++ {
		dense = append(dense, diffOp{kind: dAllocIntArr, a: i % diffRootSlots, b: 47, c: i},
			diffOp{kind: dPin, a: i % diffRootSlots})
	}
	dense = append(dense, diffOp{kind: dCollectYoung}, diffOp{kind: dCollectFull})
	seeds = append(seeds, encHeapOps(dense))

	// Cond-pin flip-flop across cycles, with unpins interleaved.
	flip := []diffOp{
		{kind: dAllocNode, a: 0, b: 1}, {kind: dCondPin, a: 0, b: 1},
		{kind: dCollectYoung},
		{kind: dAllocNode, a: 1, b: 2}, {kind: dCondPin, a: 1, b: 2},
		{kind: dPin, a: 1}, {kind: dCollectFull}, {kind: dUnpin, a: 0},
		{kind: dCollectFull},
	}
	seeds = append(seeds, encHeapOps(flip))

	// Churn + drop + compact: fragment the elder space, then slide.
	var churn []diffOp
	for i := 0; i < 20; i++ {
		churn = append(churn, diffOp{kind: dAllocIntArr, a: i % diffRootSlots, b: 1 + i, c: i})
	}
	for i := 0; i < 20; i += 2 {
		churn = append(churn, diffOp{kind: dDrop, a: i % diffRootSlots})
	}
	churn = append(churn, diffOp{kind: dCollectFull}, diffOp{kind: dCollectCompact})
	seeds = append(seeds, encHeapOps(churn))

	// Linked cycles through pinned anchors.
	loop := []diffOp{
		{kind: dAllocNode, a: 0, b: 10}, {kind: dAllocNode, a: 1, b: 11},
		{kind: dLinkField, a: 0, b: 1, c: 1}, {kind: dLinkField, a: 1, b: 1, c: 0},
		{kind: dPin, a: 0}, {kind: dCollectYoung},
		{kind: dAllocRefArr, a: 2, b: 4}, {kind: dLinkElem, a: 2, b: 0, c: 1},
		{kind: dDrop, a: 1}, {kind: dCollectFull},
	}
	seeds = append(seeds, encHeapOps(loop))

	return seeds
}

func FuzzHeapOps(f *testing.F) {
	for _, s := range fuzzSeedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeHeapOps(data)
		if len(ops) == 0 {
			return
		}
		finals := make([][]string, 2)
		for wi, workers := range []int{1, 4} {
			w := newDiffWorld(workers)
			for i, op := range ops {
				w.step(t, op)
				if t.Failed() {
					w.close()
					t.Fatalf("workers=%d: op %d (%v) failed", workers, i, op.kind)
				}
				switch op.kind {
				case dCollectYoung, dCollectFull, dCollectCompact:
					if err := w.checkInvariants(); err != nil {
						w.close()
						t.Fatalf("workers=%d: op %d: %v", workers, i, err)
					}
				}
			}
			w.step(t, diffOp{kind: dCollectFull})
			if err := w.checkInvariants(); err != nil {
				w.close()
				t.Fatalf("workers=%d: final full GC: %v", workers, err)
			}
			finals[wi] = w.snapshot()
			w.close()
		}
		if strings.Join(finals[0], "\n") != strings.Join(finals[1], "\n") {
			t.Fatalf("final graphs diverged:\nlegacy:\n%s\nmodern:\n%s",
				strings.Join(finals[0], "\n"), strings.Join(finals[1], "\n"))
		}
	})
}

// TestDonationSubHeaderTail is the exact regression for the donation
// accounting bug this PR fixes: a donated young block whose last
// pinned survivor ends 8 bytes before the block end leaves a tail too
// small for a free-block header. The old code appended the full range
// anyway, leaving the elder walk uncoverable; the fix truncates the
// donated range at the survivor and accounts every byte as live or
// dead (DonatedLiveBytes / DonatedDeadBytes).
func TestDonationSubHeaderTail(t *testing.T) {
	const young = 32 << 10
	v := New(Config{Name: "tail", Heap: HeapConfig{
		YoungSize: young, InitialElder: 256 << 10, ArenaMax: 32 << 20, GCWorkers: 1,
	}})
	at := v.ArrayType(KindInt32, nil, 1)
	v.WithThread("t", func(th *Thread) {
		// 2046 dead 16-byte arrays + one live 24-byte array fills the
		// 32 KiB nursery to exactly 8 bytes short of the end.
		for i := 0; i < 2046; i++ {
			if _, err := v.Heap.AllocArray(at, 0); err != nil {
				t.Fatal(err)
			}
		}
		last, err := v.Heap.NewInt32Array([]int32{7, 9})
		if err != nil {
			t.Fatal(err)
		}
		pop := th.PushFrame(&last)
		defer pop()
		_, used, _ := v.Heap.MemUse()
		if used != young-8 {
			t.Fatalf("nursery used %d bytes, want %d (layout drifted)", used, young-8)
		}
		v.Heap.Pin(last)
		defer v.Heap.Unpin(last)

		th.CollectYoung()

		gs := v.Heap.Stats.Snapshot()
		if gs.BlocksDonated != 1 {
			t.Fatalf("BlocksDonated = %d, want 1", gs.BlocksDonated)
		}
		if gs.DonatedLiveBytes != 24 {
			t.Errorf("DonatedLiveBytes = %d, want 24", gs.DonatedLiveBytes)
		}
		if gs.DonatedDeadBytes != young-8-24 {
			t.Errorf("DonatedDeadBytes = %d, want %d", gs.DonatedDeadBytes, young-8-24)
		}
		if v.Heap.IsYoung(last) || !v.Heap.Valid(last) {
			t.Fatal("pinned survivor lost by donation")
		}
		if got := v.Heap.Int32Slice(last); got[0] != 7 || got[1] != 9 {
			t.Errorf("pinned payload corrupted: %v", got)
		}
		if err := v.Heap.CheckInvariants(); err != nil {
			t.Fatalf("heap not walkable after sub-header tail donation: %v", err)
		}
	})
}

// TestFuzzSeedsDeterministic pins the corpus encoding: every seed
// must decode back to the op list it was built from, or the corpus
// silently stops covering the shapes it was written for.
func TestFuzzSeedsDeterministic(t *testing.T) {
	for i, s := range fuzzSeedCorpus() {
		ops := decodeHeapOps(s)
		if len(ops)*4 != len(s) {
			t.Errorf("seed %d: %d bytes decoded to %d ops", i, len(s), len(ops))
		}
		if got := encHeapOps(ops); string(got) != string(s) {
			t.Errorf("seed %d: not a round trip", i)
		}
		_ = fmt.Sprintf("%v", ops)
	}
}
