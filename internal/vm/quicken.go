package vm

import (
	"encoding/binary"
	"fmt"
)

// Load-time quickening (ROADMAP item 2). The bytecode verifier already
// proves, per instruction, operand stack kinds, exact receiver classes
// and checked stores. This pass spends those proofs once at load time:
// verified methods are rewritten into a pre-decoded internal form —
// wide instructions with resolved operands, fused superinstructions
// for hot pairs, direct calls where the receiver class is exact, and
// inline caches elsewhere — executed by the second dispatch loop in
// quickrun.go. Baseline semantics in interp.go remain the reference:
// the quickened form must produce identical results, traps (kind,
// detail, method, pc) and GC-poll placement, a property enforced by
// the differential suite in quicken_diff_test.go.
//
// Soundness note: non-exact static ref types from the verifier are
// upper bounds only and are NOT trusted for layout decisions; baked
// field descriptors, baked array layouts and devirtualized calls
// require an exact type fact (Method.Facts), which flows only from
// allocation sites. Everything else keeps the baseline's dynamic
// method-table consultation.

// quickBody is a method's quickened instruction stream. Branch targets
// are indices into insts; every qinst records the bytecode offset(s)
// of the source instruction(s) it covers so traps map back through
// Method.Lines exactly as baseline dispatch does.
type quickBody struct {
	insts []qinst
}

// qOp enumerates quickened operations. The set mirrors Op plus fused
// superinstructions (qCmpBr, qIncLoc, qLdLocFld*, qLdArgCall) and
// specialized forms (qCallExact, qLdFldD/qStFldD, qLdElemK/qStElemK)
// that bake verifier-proven exact-type facts.
type qOp uint8

const (
	qNop qOp = iota
	qLdc     // push Value{Bits: imm}
	qLdNull

	qLdLoc // a = slot
	qStLoc
	qLdArg
	qStArg

	qDup
	qPop

	qAdd
	qSub
	qMul
	qDiv
	qRem
	qAnd
	qOr
	qXor
	qShl
	qShr
	qNeg
	qNot

	qAddF
	qSubF
	qMulF
	qDivF
	qNegF

	qCeq
	qClt
	qCgt
	qCeqF
	qCltF
	qCgtF

	qConvI2F
	qConvF2I

	qBr      // t = target index
	qBrTrue  // t = target index
	qBrFalse // t = target index
	qCmpBr   // fused compare+branch: a = selector, b = branch-on-true, t = target
	qIncLoc  // fused ldloc a; ldc.i4 imm; add; stloc a

	qCall      // m = callee
	qLdArgCall // fused ldarg a; call m
	qCallExact // devirtualized callvirt: m = proven implementation
	qCallVirt  // m = statically named method; cmt/cimpl inline cache
	qIntern    // a = internal index (resolved per dispatch; registry may be re-pointed)

	qRet
	qRetVal

	qNewObj // mt = class
	qNewArr // mt = array type
	qNewMD  // mt = multidim array type (rank from mt)

	qLdLen
	qLdElem    // dynamic: element kind from the receiver's method table
	qLdElemK   // mt = exact array type (layout baked)
	qStElem    // dynamic; full store checks
	qStElemK   // mt = exact array type; b = 1 when the store is verifier-checked
	qLdFld     // dynamic: a = field slot
	qLdFldD    // fld = baked descriptor (exact receiver)
	qLdLocFld  // fused ldloc a; ldfld b (dynamic)
	qLdLocFldD // fused ldloc a; ldfld with baked fld
	qStFld     // dynamic: a = field slot
	qStFldD    // fld = baked descriptor; b = 1 when the store is verifier-checked
	qLdSFld    // a = global index
	qStSFld
)

// qinst is one pre-decoded quickened instruction. It is deliberately
// wide: operand decoding, registry lookups and branch-target
// resolution all happen once at quicken time.
type qinst struct {
	op   qOp
	a, b int32 // small operands: slots, selectors, flags
	t    int32 // branch target (index into insts after fixup)
	// pc is the bytecode offset of the source instruction (the fusion
	// head for superinstructions); pc2 is the offset of the fused
	// second instruction. Traps raised by a fused component report the
	// component's own offset so LineForPC attributes the original masm
	// line, not the fusion head's.
	pc, pc2 int32
	imm     uint64 // immediate constant bits
	back    bool   // branch whose target precedes it: GC poll + step charge

	m   *Method
	mt  *MethodTable
	fld *FieldDesc

	// Inline monomorphic cache for qCallVirt: the last receiver type
	// and its resolved implementation. Mutated during execution; safe
	// because the VM's execution token serializes managed dispatch.
	cmt   *MethodTable
	cimpl *Method
}

// QuickenInfo summarizes one method's quickening for stats.
type QuickenInfo struct {
	In       int // source instructions decoded
	Out      int // quickened instructions emitted
	Fused    int // superinstructions formed
	Devirted int // callvirt sites bound to an exact implementation
}

// rawInst is the decode-pass view of one bytecode instruction.
type rawInst struct {
	pc   int
	op   Op
	arg  int    // u16 operand, or absolute branch-target pc
	imm  uint64 // i32 (sign-extended) / i64 / r8 immediate bits
	size int
}

// QuickenMethod compiles a verified method's bytecode into quickened
// form and installs it, so subsequent activations dispatch through the
// fast loop. Unverified methods are rejected: quickening trusts the
// verifier's stack-shape and exact-type proofs. On any error the
// method is left unquickened (baseline dispatch remains correct).
func (v *VM) QuickenMethod(m *Method) (QuickenInfo, error) {
	if !m.Verified {
		return QuickenInfo{}, fmt.Errorf("vm: quicken %s: method not verified", m.FullName())
	}
	code := m.Code

	// Pass 1: decode, collect branch-target offsets.
	var raw []rawInst
	targets := make(map[int]bool)
	for pc := 0; pc < len(code); {
		op := Op(code[pc])
		if !op.Valid() {
			return QuickenInfo{}, fmt.Errorf("vm: quicken %s: bad opcode %d at pc=%d", m.FullName(), op, pc)
		}
		size := 1 + op.operandBytes()
		if pc+size > len(code) {
			return QuickenInfo{}, fmt.Errorf("vm: quicken %s: truncated operand at pc=%d", m.FullName(), pc)
		}
		ri := rawInst{pc: pc, op: op, size: size}
		switch opTable[op].width {
		case wU16:
			ri.arg = int(u16(code, pc+1))
		case wI32:
			v32 := int32(binary.LittleEndian.Uint32(code[pc+1:]))
			if op == OpLdcI4 {
				ri.imm = uint64(int64(v32))
			} else {
				ri.arg = pc + size + int(v32) // absolute target
			}
		case wI64:
			ri.imm = binary.LittleEndian.Uint64(code[pc+1:])
		}
		if op.Effect().Branch {
			if ri.arg < 0 || ri.arg > len(code) {
				return QuickenInfo{}, fmt.Errorf("vm: quicken %s: branch target %d out of range at pc=%d", m.FullName(), ri.arg, pc)
			}
			targets[ri.arg] = true
		}
		raw = append(raw, ri)
		pc += size
	}

	// factExact resolves an exact-type fact at a bytecode offset.
	factExact := func(pc int) *MethodTable {
		f, ok := m.Facts[pc]
		if !ok || f.ExactType == 0 {
			return nil
		}
		mt, ok := v.TypeByIndex(int(f.ExactType) - 1)
		if !ok {
			return nil
		}
		return mt
	}
	storeChecked := func(pc int) int32 {
		if m.Facts[pc].StoreChecked {
			return 1
		}
		return 0
	}
	// A raw instruction may be absorbed into a superinstruction only if
	// no branch lands on it (its offset would have no quickened index).
	free := func(j int) bool { return j < len(raw) && !targets[raw[j].pc] }

	// Pass 2: emit, fusing where legal.
	info := QuickenInfo{In: len(raw)}
	insts := make([]qinst, 0, len(raw))
	pcToQ := make(map[int]int, len(raw))
	for i := 0; i < len(raw); {
		r := raw[i]
		pcToQ[r.pc] = len(insts)

		// ldloc X; ldc.i4 K; add; stloc X  →  qIncLoc
		if r.op == OpLdLoc && i+3 < len(raw) &&
			free(i+1) && free(i+2) && free(i+3) &&
			raw[i+1].op == OpLdcI4 && raw[i+2].op == OpAdd &&
			raw[i+3].op == OpStLoc && raw[i+3].arg == r.arg {
			insts = append(insts, qinst{op: qIncLoc, a: int32(r.arg), imm: raw[i+1].imm, pc: int32(r.pc)})
			info.Fused++
			i += 4
			continue
		}
		// compare; brtrue/brfalse  →  qCmpBr
		if sel, isCmp := cmpSelector(r.op); isCmp && free(i+1) &&
			(raw[i+1].op == OpBrTrue || raw[i+1].op == OpBrFalse) {
			sense := int32(0)
			if raw[i+1].op == OpBrTrue {
				sense = 1
			}
			insts = append(insts, qinst{
				op: qCmpBr, a: sel, b: sense, t: int32(raw[i+1].arg),
				pc: int32(r.pc), pc2: int32(raw[i+1].pc),
			})
			info.Fused++
			i += 2
			continue
		}
		// ldloc X; ldfld slot  →  qLdLocFld[D]
		if r.op == OpLdLoc && free(i+1) && raw[i+1].op == OpLdFld {
			slot := raw[i+1].arg
			fpc := raw[i+1].pc
			q := qinst{op: qLdLocFld, a: int32(r.arg), b: int32(slot), pc: int32(r.pc), pc2: int32(fpc)}
			if mt := factExact(fpc); mt != nil && mt.Kind == TKClass && slot < len(mt.Fields) {
				q.op = qLdLocFldD
				q.fld = &mt.Fields[slot]
			}
			insts = append(insts, q)
			info.Fused++
			i += 2
			continue
		}
		// ldarg X; call M  →  qLdArgCall
		if r.op == OpLdArg && free(i+1) && raw[i+1].op == OpCall {
			if callee, ok := v.MethodByIndex(raw[i+1].arg); ok && callee.NArgs >= 1 {
				insts = append(insts, qinst{
					op: qLdArgCall, a: int32(r.arg), m: callee,
					pc: int32(r.pc), pc2: int32(raw[i+1].pc),
				})
				info.Fused++
				i += 2
				continue
			}
		}

		q := qinst{pc: int32(r.pc)}
		switch r.op {
		case OpNop:
			q.op = qNop
		case OpLdcI4, OpLdcI8, OpLdcR8:
			q.op, q.imm = qLdc, r.imm
		case OpLdNull:
			q.op = qLdNull
		case OpLdLoc:
			q.op, q.a = qLdLoc, int32(r.arg)
		case OpStLoc:
			q.op, q.a = qStLoc, int32(r.arg)
		case OpLdArg:
			q.op, q.a = qLdArg, int32(r.arg)
		case OpStArg:
			q.op, q.a = qStArg, int32(r.arg)
		case OpDup:
			q.op = qDup
		case OpPop:
			q.op = qPop
		case OpAdd:
			q.op = qAdd
		case OpSub:
			q.op = qSub
		case OpMul:
			q.op = qMul
		case OpDiv:
			q.op = qDiv
		case OpRem:
			q.op = qRem
		case OpAnd:
			q.op = qAnd
		case OpOr:
			q.op = qOr
		case OpXor:
			q.op = qXor
		case OpShl:
			q.op = qShl
		case OpShr:
			q.op = qShr
		case OpNeg:
			q.op = qNeg
		case OpNot:
			q.op = qNot
		case OpAddF:
			q.op = qAddF
		case OpSubF:
			q.op = qSubF
		case OpMulF:
			q.op = qMulF
		case OpDivF:
			q.op = qDivF
		case OpNegF:
			q.op = qNegF
		case OpCeq:
			q.op = qCeq
		case OpClt:
			q.op = qClt
		case OpCgt:
			q.op = qCgt
		case OpCeqF:
			q.op = qCeqF
		case OpCltF:
			q.op = qCltF
		case OpCgtF:
			q.op = qCgtF
		case OpConvI2F:
			q.op = qConvI2F
		case OpConvF2I:
			q.op = qConvF2I
		case OpBr:
			q.op, q.t = qBr, int32(r.arg)
		case OpBrTrue:
			q.op, q.t = qBrTrue, int32(r.arg)
		case OpBrFalse:
			q.op, q.t = qBrFalse, int32(r.arg)
		case OpCall, OpCallVirt:
			callee, ok := v.MethodByIndex(r.arg)
			if !ok {
				return QuickenInfo{}, fmt.Errorf("vm: quicken %s: bad method index %d at pc=%d", m.FullName(), r.arg, r.pc)
			}
			q.op, q.m = qCall, callee
			if r.op == OpCallVirt {
				q.op = qCallVirt
				if mt := factExact(r.pc); mt != nil && callee.Virtual && callee.Owner != nil {
					if impl := lookupVSlot(mt, callee.VSlot); impl != nil {
						q.op, q.m = qCallExact, impl
						info.Devirted++
					}
				}
			}
		case OpIntern:
			if _, ok := v.InternalByIndex(r.arg); !ok {
				return QuickenInfo{}, fmt.Errorf("vm: quicken %s: bad internal index %d at pc=%d", m.FullName(), r.arg, r.pc)
			}
			q.op, q.a = qIntern, int32(r.arg)
		case OpRet:
			q.op = qRet
		case OpRetVal:
			q.op = qRetVal
		case OpNewObj, OpNewArr, OpNewMD:
			mt, ok := v.TypeByIndex(r.arg)
			if !ok {
				return QuickenInfo{}, fmt.Errorf("vm: quicken %s: bad type index %d at pc=%d", m.FullName(), r.arg, r.pc)
			}
			switch {
			case r.op == OpNewObj && mt.Kind == TKClass:
				q.op = qNewObj
			case r.op == OpNewArr && mt.Kind == TKArray:
				q.op = qNewArr
			case r.op == OpNewMD && mt.Kind == TKArray && mt.Rank >= 2:
				q.op = qNewMD
			default:
				return QuickenInfo{}, fmt.Errorf("vm: quicken %s: type %s unfit for %s at pc=%d", m.FullName(), mt, r.op.Name(), r.pc)
			}
			q.mt = mt
		case OpLdLen:
			q.op = qLdLen
		case OpLdElem:
			q.op = qLdElem
			if mt := factExact(r.pc); mt != nil && mt.Kind == TKArray {
				q.op, q.mt = qLdElemK, mt
			}
		case OpStElem:
			q.op = qStElem
			if mt := factExact(r.pc); mt != nil && mt.Kind == TKArray {
				q.op, q.mt, q.b = qStElemK, mt, storeChecked(r.pc)
			}
		case OpLdFld:
			q.op, q.a = qLdFld, int32(r.arg)
			if mt := factExact(r.pc); mt != nil && mt.Kind == TKClass && r.arg < len(mt.Fields) {
				q.op, q.fld = qLdFldD, &mt.Fields[r.arg]
			}
		case OpStFld:
			q.op, q.a = qStFld, int32(r.arg)
			if mt := factExact(r.pc); mt != nil && mt.Kind == TKClass && r.arg < len(mt.Fields) {
				q.op, q.fld, q.b = qStFldD, &mt.Fields[r.arg], storeChecked(r.pc)
			}
		case OpLdSFld:
			q.op, q.a = qLdSFld, int32(r.arg)
		case OpStSFld:
			q.op, q.a = qStSFld, int32(r.arg)
		default:
			return QuickenInfo{}, fmt.Errorf("vm: quicken %s: unhandled opcode %s at pc=%d", m.FullName(), r.op.Name(), r.pc)
		}
		insts = append(insts, q)
		i++
	}

	// Pass 3: branch fixup — targets become quickened indices, and
	// backward branches (the GC poll / step-charge points) are marked
	// using original bytecode offsets, so poll placement matches the
	// baseline loop's nextPC < pc test exactly.
	for idx := range insts {
		q := &insts[idx]
		switch q.op {
		case qBr, qBrTrue, qBrFalse, qCmpBr:
			tpc := int(q.t)
			bpc := int(q.pc)
			if q.op == qCmpBr {
				bpc = int(q.pc2)
			}
			q.back = tpc < bpc
			if tpc == len(code) {
				q.t = int32(len(insts)) // falls off the end: void return
			} else if qi, ok := pcToQ[tpc]; ok {
				q.t = int32(qi)
			} else {
				return QuickenInfo{}, fmt.Errorf("vm: quicken %s: branch into fused instruction at pc=%d", m.FullName(), tpc)
			}
		}
	}

	info.Out = len(insts)
	m.quick = &quickBody{insts: insts}
	return info, nil
}

// Unquicken removes a method's quickened body, restoring baseline
// dispatch (the -noquicken escape hatch and tests use this).
func (m *Method) Unquicken() { m.quick = nil }

// cmpSelector maps a comparison opcode to the qCmpBr selector.
func cmpSelector(op Op) (int32, bool) {
	switch op {
	case OpCeq:
		return 0, true
	case OpClt:
		return 1, true
	case OpCgt:
		return 2, true
	case OpCeqF:
		return 3, true
	case OpCltF:
		return 4, true
	case OpCgtF:
		return 5, true
	}
	return 0, false
}
