package vm

// Differential GC parity suite (docs/GC.md): the serial legacy
// collector (GCWorkers=1) and the modern collector (parallel mark,
// pin-aware promotion, elder compaction) must implement the SAME
// observable semantics. A seeded generator builds one concrete op
// script — allocation graphs with cycles, pins, conditional pins,
// write-barrier mutations, and explicit collections — and replays it
// against two fresh VMs, one per collector. After every collection
// the logical heap graphs, pin decisions, and promotion accounting
// must match exactly, and both heaps must pass CheckInvariants.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

const (
	diffRootSlots = 24
	diffYoung     = 32 << 10
)

// --- op script -------------------------------------------------------

type diffOpKind int

const (
	dAllocNode diffOpKind = iota
	dAllocIntArr
	dAllocRefArr
	dLinkField
	dLinkElem
	dStoreInt
	dDrop
	dPin
	dUnpin
	dCondPin
	dCollectYoung
	dCollectFull
	dCollectCompact
)

// diffOp is one fully pre-drawn operation: all randomness is resolved
// at script-generation time so both worlds replay byte-identical
// sequences.
type diffOp struct {
	kind    diffOpKind
	a, b, c int // slot / field / target operands, meaning per kind
}

// genScript draws a bounded script: each round allocates at most
// diffAllocsPerRound small objects (so the modern collector's
// possibly-halved nursery never fills between the explicit
// collections) and ends in a collection.
func genScript(seed int64, rounds int) []diffOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []diffOp
	for r := 0; r < rounds; r++ {
		allocs := 0
		n := 8 + rng.Intn(8)
		for i := 0; i < n; i++ {
			switch k := rng.Intn(10); {
			case k < 3 && allocs < 10:
				allocs++
				ops = append(ops, diffOp{kind: dAllocNode, a: rng.Intn(diffRootSlots), b: rng.Intn(1 << 16)})
			case k == 3 && allocs < 10:
				allocs++
				ops = append(ops, diffOp{kind: dAllocIntArr, a: rng.Intn(diffRootSlots), b: 1 + rng.Intn(48), c: rng.Intn(1 << 16)})
			case k == 4 && allocs < 10:
				allocs++
				ops = append(ops, diffOp{kind: dAllocRefArr, a: rng.Intn(diffRootSlots), b: 1 + rng.Intn(8)})
			case k == 5:
				ops = append(ops, diffOp{kind: dLinkField, a: rng.Intn(diffRootSlots), b: rng.Intn(3), c: rng.Intn(diffRootSlots)})
			case k == 6:
				ops = append(ops, diffOp{kind: dLinkElem, a: rng.Intn(diffRootSlots), b: rng.Intn(8), c: rng.Intn(diffRootSlots)})
			case k == 7:
				ops = append(ops, diffOp{kind: dStoreInt, a: rng.Intn(diffRootSlots), b: rng.Intn(1 << 16)})
			case k == 8:
				switch rng.Intn(4) {
				case 0:
					ops = append(ops, diffOp{kind: dPin, a: rng.Intn(diffRootSlots)})
				case 1:
					ops = append(ops, diffOp{kind: dUnpin, a: rng.Intn(16)})
				case 2:
					ops = append(ops, diffOp{kind: dCondPin, a: rng.Intn(diffRootSlots), b: 1 + rng.Intn(3)})
				case 3:
					ops = append(ops, diffOp{kind: dDrop, a: rng.Intn(diffRootSlots)})
				}
			default:
				ops = append(ops, diffOp{kind: dDrop, a: rng.Intn(diffRootSlots)})
			}
		}
		switch {
		case r%4 == 3:
			ops = append(ops, diffOp{kind: dCollectFull})
		case r%7 == 5:
			ops = append(ops, diffOp{kind: dCollectCompact})
		default:
			ops = append(ops, diffOp{kind: dCollectYoung})
		}
	}
	return ops
}

// --- world: one VM + mutator thread driven synchronously -------------

type diffWorld struct {
	v                          *VM
	node                       *MethodTable
	fData, fNext, fShadow, fID *FieldDesc
	intArrT, refArrT           *MethodTable
	roots                      *RefRoots
	pinnedRefs                 []Ref    // refs we have explicitly pinned, in pin order
	condCalls                  []*int32 // per cond-pin Active() call counters, in add order
	ops                        chan func(*Thread)
	ack                        chan struct{}
	done                       chan struct{}
}

func newDiffWorld(workers int) *diffWorld {
	v := New(Config{Name: "diff", Heap: HeapConfig{
		YoungSize: diffYoung, InitialElder: 256 << 10, ArenaMax: 32 << 20, GCWorkers: workers,
	}})
	w := &diffWorld{
		v:       v,
		node:    nodeClass(v),
		intArrT: v.ArrayType(KindInt32, nil, 1),
		roots:   &RefRoots{Refs: make([]Ref, diffRootSlots)},
		ops:     make(chan func(*Thread)),
		ack:     make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.refArrT = v.ArrayType(KindRef, w.node, 1)
	w.fData = w.node.FieldByName("data")
	w.fNext = w.node.FieldByName("next")
	w.fShadow = w.node.FieldByName("shadow")
	w.fID = w.node.FieldByName("id")
	v.AddRootProvider(w.roots)
	go func() {
		defer close(w.done)
		v.WithThread("mut", func(th *Thread) {
			for f := range w.ops {
				f(th)
				w.ack <- struct{}{}
			}
		})
	}()
	return w
}

func (w *diffWorld) do(f func(*Thread)) { w.ops <- f; <-w.ack }
func (w *diffWorld) close()             { close(w.ops); <-w.done }

// step applies one script op. All heap access happens on the mutator
// goroutine; the op script is deterministic, so both worlds make
// identical pin/unpin/cond-pin decisions.
func (w *diffWorld) step(t *testing.T, op diffOp) {
	t.Helper()
	w.do(func(th *Thread) {
		h := w.v.Heap
		switch op.kind {
		case dAllocNode:
			n, err := h.AllocClass(w.node)
			if err != nil {
				t.Errorf("AllocClass: %v", err)
				return
			}
			h.SetScalar(n, w.fID, uint64(uint32(op.b)))
			w.roots.Refs[op.a] = n
		case dAllocIntArr:
			vals := make([]int32, op.b)
			for i := range vals {
				vals[i] = int32(op.c + i)
			}
			arr, err := h.NewInt32Array(vals)
			if err != nil {
				t.Errorf("NewInt32Array: %v", err)
				return
			}
			w.roots.Refs[op.a] = arr
		case dAllocRefArr:
			arr, err := h.AllocArray(w.refArrT, op.b)
			if err != nil {
				t.Errorf("AllocArray: %v", err)
				return
			}
			w.roots.Refs[op.a] = arr
		case dLinkField:
			from, to := w.roots.Refs[op.a], w.roots.Refs[op.c]
			if from == NullRef || h.MT(from) != w.node {
				return
			}
			f := [...]*FieldDesc{w.fData, w.fNext, w.fShadow}[op.b]
			h.SetRef(from, f, to)
		case dLinkElem:
			from, to := w.roots.Refs[op.a], w.roots.Refs[op.c]
			if from == NullRef || h.MT(from) != w.refArrT {
				return
			}
			if n := int(h.arrayLen(from)); n > 0 {
				h.SetElemRef(from, op.b%n, to)
			}
		case dStoreInt:
			r := w.roots.Refs[op.a]
			if r == NullRef {
				return
			}
			switch h.MT(r) {
			case w.node:
				h.SetScalar(r, w.fID, uint64(uint32(op.b)))
			case w.intArrT:
				if n := int(h.arrayLen(r)); n > 0 {
					h.SetElem(r, op.b%n, uint64(uint32(op.b)))
				}
			}
		case dDrop:
			w.roots.Refs[op.a] = NullRef
		case dPin:
			if r := w.roots.Refs[op.a]; r != NullRef {
				h.Pin(r)
				w.pinnedRefs = append(w.pinnedRefs, r)
			}
		case dUnpin:
			if op.a < len(w.pinnedRefs) {
				h.Unpin(w.pinnedRefs[op.a])
				w.pinnedRefs = append(w.pinnedRefs[:op.a], w.pinnedRefs[op.a+1:]...)
			}
		case dCondPin:
			if r := w.roots.Refs[op.a]; r != NullRef {
				calls := new(int32)
				hold := int32(op.b)
				w.condCalls = append(w.condCalls, calls)
				h.AddCondPin(r, func() bool {
					return atomic.AddInt32(calls, 1) <= hold
				})
			}
		case dCollectYoung:
			th.CollectYoung()
		case dCollectFull:
			th.CollectFull()
		case dCollectCompact:
			th.CollectCompact()
		}
	})
}

// snapshot renders the reachable heap graph in a canonical,
// address-independent form: objects are numbered in discovery order
// from the root slots and the pin list, and every line captures one
// object's type, scalar payload, and the discovery indices of its
// referents. Two worlds with identical logical heaps produce
// identical snapshots regardless of where the collector placed
// anything.
func (w *diffWorld) snapshot() []string {
	var lines []string
	w.do(func(_ *Thread) {
		h := w.v.Heap
		index := map[Ref]int{}
		var order []Ref
		var visit func(Ref)
		visit = func(r Ref) {
			if r == NullRef {
				return
			}
			if _, ok := index[r]; ok {
				return
			}
			index[r] = len(order)
			order = append(order, r)
			switch h.MT(r) {
			case w.node:
				visit(h.GetRef(r, w.fData))
				visit(h.GetRef(r, w.fNext))
				visit(h.GetRef(r, w.fShadow))
			case w.refArrT:
				for i := 0; i < int(h.arrayLen(r)); i++ {
					visit(h.GetElemRef(r, i))
				}
			}
		}
		for _, r := range w.roots.Refs {
			visit(r)
		}
		for _, r := range w.pinnedRefs {
			visit(r)
		}
		idx := func(r Ref) int {
			if r == NullRef {
				return -1
			}
			return index[r]
		}
		for i, r := range order {
			switch h.MT(r) {
			case w.node:
				lines = append(lines, fmt.Sprintf("%d node id=%d data=%d next=%d shadow=%d pinned=%v",
					i, int32(h.GetScalar(r, w.fID)), idx(h.GetRef(r, w.fData)),
					idx(h.GetRef(r, w.fNext)), idx(h.GetRef(r, w.fShadow)), h.Pinned(r)))
			case w.intArrT:
				lines = append(lines, fmt.Sprintf("%d int32[%d] %v pinned=%v",
					i, h.arrayLen(r), h.Int32Slice(r), h.Pinned(r)))
			case w.refArrT:
				elems := make([]int, h.arrayLen(r))
				for j := range elems {
					elems[j] = idx(h.GetElemRef(r, j))
				}
				lines = append(lines, fmt.Sprintf("%d node[%d] %v pinned=%v",
					i, h.arrayLen(r), elems, h.Pinned(r)))
			default:
				lines = append(lines, fmt.Sprintf("%d ???", i))
			}
		}
		// Root slot shape is part of the logical state too.
		slots := make([]int, diffRootSlots)
		for i, r := range w.roots.Refs {
			slots[i] = idx(r)
		}
		lines = append(lines, fmt.Sprintf("roots %v", slots))
	})
	return lines
}

func (w *diffWorld) checkInvariants() error {
	var err error
	w.do(func(_ *Thread) { err = w.v.Heap.CheckInvariants() })
	return err
}

// --- the suite -------------------------------------------------------

func runGCParitySeed(t *testing.T, seed int64) {
	t.Helper()
	script := genScript(seed, 8)
	legacy := newDiffWorld(1)
	modern := newDiffWorld(4)
	defer legacy.close()
	defer modern.close()

	for i, op := range script {
		legacy.step(t, op)
		modern.step(t, op)
		if t.Failed() {
			t.Fatalf("seed %d: op %d (%v) failed", seed, i, op.kind)
		}
		if op.kind != dCollectYoung && op.kind != dCollectFull && op.kind != dCollectCompact {
			continue
		}
		if err := legacy.checkInvariants(); err != nil {
			t.Fatalf("seed %d op %d: legacy invariants: %v", seed, i, err)
		}
		if err := modern.checkInvariants(); err != nil {
			t.Fatalf("seed %d op %d: modern invariants: %v", seed, i, err)
		}
		ls, ms := legacy.snapshot(), modern.snapshot()
		if len(ls) != len(ms) {
			t.Fatalf("seed %d op %d: graph size diverged: legacy %d objects, modern %d\nlegacy:\n%s\nmodern:\n%s",
				seed, i, len(ls), len(ms), strings.Join(ls, "\n"), strings.Join(ms, "\n"))
		}
		for j := range ls {
			if ls[j] != ms[j] {
				t.Fatalf("seed %d op %d: graphs diverged at object %d:\nlegacy: %s\nmodern: %s",
					seed, i, j, ls[j], ms[j])
			}
		}
	}

	// Accounting parity: both collectors must have made identical
	// collection, promotion, and cond-pin decisions.
	lg, mg := legacy.v.Heap.Stats.Snapshot(), modern.v.Heap.Stats.Snapshot()
	if lg.Scavenges != mg.Scavenges || lg.FullGCs != mg.FullGCs {
		t.Errorf("seed %d: cycle counts diverged: legacy %d/%d, modern %d/%d",
			seed, lg.Scavenges, lg.FullGCs, mg.Scavenges, mg.FullGCs)
	}
	if lg.BytesPromoted != mg.BytesPromoted {
		t.Errorf("seed %d: promotion decisions diverged: legacy %dB, modern %dB",
			seed, lg.BytesPromoted, mg.BytesPromoted)
	}
	if lg.CondPinsHeld != mg.CondPinsHeld || lg.CondPinsDropped != mg.CondPinsDropped {
		t.Errorf("seed %d: cond-pin decisions diverged: legacy %d/%d, modern %d/%d",
			seed, lg.CondPinsHeld, lg.CondPinsDropped, mg.CondPinsHeld, mg.CondPinsDropped)
	}
	if len(legacy.condCalls) != len(modern.condCalls) {
		t.Fatalf("seed %d: cond-pin registration diverged", seed)
	}
	for i := range legacy.condCalls {
		lc, mc := atomic.LoadInt32(legacy.condCalls[i]), atomic.LoadInt32(modern.condCalls[i])
		if lc != mc {
			t.Errorf("seed %d: cond pin %d examined %d times by legacy, %d by modern (must be once per cycle)",
				seed, i, lc, mc)
		}
	}

	// The legacy donation path must account every donated byte as
	// either live or dead: each donated block is exactly YoungSize
	// wide, minus at most a sub-header tail that is leaked by design.
	if lg.BlocksDonated > 0 {
		total := lg.DonatedLiveBytes + lg.DonatedDeadBytes
		max := lg.BlocksDonated * diffYoung
		min := lg.BlocksDonated * (diffYoung - HeaderSize/2)
		if total > max || total < min {
			t.Errorf("seed %d: donation accounting leak: live %d + dead %d = %d, want within [%d,%d] for %d blocks",
				seed, lg.DonatedLiveBytes, lg.DonatedDeadBytes, total, min, max, lg.BlocksDonated)
		}
	}
	// The modern collector should almost never fall back to donation:
	// pinned survivors land in dedicated pinned blocks instead.
	if mg.BlocksDonated > 0 && mg.PinnedSegregated == 0 {
		t.Errorf("seed %d: modern collector donated %d blocks without ever segregating", seed, mg.BlocksDonated)
	}
}

// TestGCDifferentialParity is the quick tier-1 slice of the suite.
func TestGCDifferentialParity(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed%03d", s), func(t *testing.T) { runGCParitySeed(t, int64(s)) })
	}
}

// TestStressGCDifferentialParity is the full suite (≥150 seeds); the
// stress tier runs it under -race so the parallel mark pool, the
// cond-pin resolver, and the parity machinery are all exercised with
// the race detector watching.
func TestStressGCDifferentialParity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: covered by TestGCDifferentialParity")
	}
	for s := 100; s < 260; s++ {
		s := s
		t.Run(fmt.Sprintf("seed%03d", s), func(t *testing.T) {
			t.Parallel()
			runGCParitySeed(t, int64(s))
		})
	}
}
