package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"motor/internal/obs"
	"motor/internal/vm"
)

// The GC benchmark measures stop-the-rank pause behavior at a
// production-sized live heap under the paper's §5.3 pinning workload:
// a long-lived object graph plus a rotating window of pinned
// transport buffers in the nursery. Both collectors run the same
// driver; the only variable is -gcworkers.
//
// The serial collector handles a pinned nursery by donating the whole
// young block to the elder space and carving a fresh one, so every
// pinned scavenge grows the arena. The driver applies the standard
// production full-heap policy — collect fully when the footprint has
// grown GrowthPct percent since the last full collection — which the
// serial collector's donation churn trips over and over, putting
// full-heap marks of the entire live set into its pause tail. The
// modern collector segregates pinned survivors into dedicated blocks
// and reuses the nursery in place, so its footprint stays flat and
// its pause distribution stays at scavenge scale.
//
// Pauses come from the PR 3 gc-pause histogram (obs.HistGCPause), and
// only the steady-state churn phase is measured — heap construction
// is excluded. A separate forced-full phase reports the wall time of
// an explicit full collection in both modes: on a multi-core host the
// mark pool shrinks it, on a single-core host it documents parity
// (see the gomaxprocs protocol field before reading that column).

// GCConfig sizes one run.
type GCConfig struct {
	LiveMB       int // long-lived object graph, ~1 KiB per node
	Rounds       int // steady-state churn rounds
	ChurnKB      int // short-lived young allocation per round
	WindowRounds int // rounds a transport buffer stays pinned
	YoungKB      int // nursery size
	GrowthPct    int // full-collect when footprint grows this % since last full
	ForcedFulls  int // explicit full collections timed after the churn phase
}

// GCGrid is the committed-artifact configuration: a ~1 GiB live heap.
func GCGrid() GCConfig {
	return GCConfig{LiveMB: 1024, Rounds: 500, ChurnKB: 1024, WindowRounds: 16,
		YoungKB: 4 << 10, GrowthPct: 12, ForcedFulls: 5}
}

// GCQuickGrid is the smoke-run configuration.
func GCQuickGrid() GCConfig {
	return GCConfig{LiveMB: 96, Rounds: 150, ChurnKB: 512, WindowRounds: 8,
		YoungKB: 2 << 10, GrowthPct: 12, ForcedFulls: 3}
}

// GCPauses is one mode's pause distribution in microseconds.
type GCPauses struct {
	Count   uint64  `json:"count"`
	P50Us   float64 `json:"p50_us"`
	P95Us   float64 `json:"p95_us"`
	P99Us   float64 `json:"p99_us"`
	MaxUs   float64 `json:"max_us"`
	TotalMs float64 `json:"total_ms"` // sum of all pauses: the throughput side of the distribution
}

// GCModeResult is one collector's run.
type GCModeResult struct {
	Mode              string   `json:"mode"`
	Workers           int      `json:"workers"`
	Pauses            GCPauses `json:"pauses"`
	Scavenges         uint64   `json:"scavenges"`
	FullGCs           uint64   `json:"full_gcs"`
	BlocksDonated     uint64   `json:"blocks_donated"`
	PinnedSegregated  uint64   `json:"pinned_segregated"`
	NurseriesRecycled uint64   `json:"nurseries_recycled"`
	Compactions       uint64   `json:"compactions"`
	ArenaStartMB      float64  `json:"arena_start_mb"`
	ArenaEndMB        float64  `json:"arena_end_mb"`
	ForcedFullMs      float64  `json:"forced_full_ms"` // mean explicit full-GC wall time
}

// GCReport is the machine-readable result (BENCH_gc.json).
type GCReport struct {
	Protocol     map[string]int `json:"protocol"`
	Modes        []GCModeResult `json:"modes"`
	P99Reduction float64        `json:"p99_reduction"` // serial p99 / modern p99
}

func runGCMode(cfg GCConfig, workers int, mode string) (GCModeResult, error) {
	res := GCModeResult{Mode: mode}
	live := uint64(cfg.LiveMB) << 20
	arenaMax := uint32(live*2 + (512 << 20))
	v := vm.New(vm.Config{Name: "bench-gc-" + mode, Heap: vm.HeapConfig{
		YoungSize:    uint32(cfg.YoungKB) << 10,
		InitialElder: 64 << 20,
		ArenaMax:     arenaMax,
		GCWorkers:    workers,
	}})
	node, err := v.NewClass("Buf", nil, []vm.FieldSpec{
		{Name: "data", Kind: vm.KindRef},
		{Name: "next", Kind: vm.KindRef},
		{Name: "id", Kind: vm.KindInt32},
	})
	if err != nil {
		return res, err
	}
	fData, fNext := node.FieldByName("data"), node.FieldByName("next")
	res.Workers = v.Heap.Workers()

	roots := &vm.RefRoots{Refs: make([]vm.Ref, 1+cfg.WindowRounds)}
	v.AddRootProvider(roots)
	var runErr error
	v.WithThread("bench", func(th *vm.Thread) {
		// Phase 1 (unmeasured): build the ~1 KiB/node live graph.
		payload := make([]int32, 240) // 16+960 array + 32 node = 1008 B/link
		nodes := int(live) / 1008
		for i := 0; i < nodes; i++ {
			n, err := v.Heap.AllocClass(node)
			if err != nil {
				runErr = fmt.Errorf("build node %d: %w", i, err)
				return
			}
			v.Heap.SetRef(n, fNext, roots.Refs[0])
			roots.Refs[0] = n
			arr, err := v.Heap.NewInt32Array(payload)
			if err != nil {
				runErr = fmt.Errorf("build payload %d: %w", i, err)
				return
			}
			v.Heap.SetRef(roots.Refs[0], fData, arr)
		}
		th.CollectFull()

		base := v.Heap.Stats.Snapshot()
		arenaBase, _, _ := v.Heap.MemUse()
		res.ArenaStartMB = float64(arenaBase) / (1 << 20)
		lastFullArena := arenaBase

		tr := obs.Start(obs.Options{})
		if tr == nil {
			runErr = fmt.Errorf("another obs session is active")
			return
		}

		// Phase 2 (measured): pinned transport churn under the
		// growth-triggered full-heap policy.
		garbage := make([]int32, 240)
		perRound := (cfg.ChurnKB << 10) / 1008
		for r := 0; r < cfg.Rounds; r++ {
			for i := 0; i < perRound; i++ {
				if _, err := v.Heap.NewInt32Array(garbage); err != nil {
					runErr = fmt.Errorf("round %d churn: %w", r, err)
					return
				}
			}
			slot := 1 + r%cfg.WindowRounds
			if old := roots.Refs[slot]; old != vm.NullRef {
				v.Heap.Unpin(old)
				roots.Refs[slot] = vm.NullRef
			}
			buf, err := v.Heap.NewInt32Array(garbage)
			if err != nil {
				runErr = fmt.Errorf("round %d buffer: %w", r, err)
				return
			}
			v.Heap.Pin(buf)
			roots.Refs[slot] = buf

			arena, _, _ := v.Heap.MemUse()
			if arena > lastFullArena+lastFullArena/uint32(100/cfg.GrowthPct) {
				th.CollectFull()
				lastFullArena, _, _ = v.Heap.MemUse()
			}
		}
		hist := tr.Hist(obs.HistGCPause).Snapshot()
		obs.Stop(tr)
		res.Pauses = GCPauses{
			Count:   hist.Count,
			P50Us:   float64(hist.P50) / 1e3,
			P95Us:   float64(hist.P95) / 1e3,
			P99Us:   float64(hist.P99) / 1e3,
			MaxUs:   float64(hist.Max) / 1e3,
			TotalMs: hist.Mean * float64(hist.Count) / 1e6,
		}

		// Phase 3: explicit full collections, wall-clock timed.
		var fullNs int64
		for i := 0; i < cfg.ForcedFulls; i++ {
			t0 := time.Now()
			th.CollectFull()
			fullNs += time.Since(t0).Nanoseconds()
		}
		if cfg.ForcedFulls > 0 {
			res.ForcedFullMs = float64(fullNs) / float64(cfg.ForcedFulls) / 1e6
		}

		gs := v.Heap.Stats.Snapshot()
		res.Scavenges = gs.Scavenges - base.Scavenges
		res.FullGCs = gs.FullGCs - base.FullGCs - uint64(cfg.ForcedFulls)
		res.BlocksDonated = gs.BlocksDonated - base.BlocksDonated
		res.PinnedSegregated = gs.PinnedSegregated - base.PinnedSegregated
		res.NurseriesRecycled = gs.NurseriesRecycled - base.NurseriesRecycled
		res.Compactions = gs.Compactions - base.Compactions
		arenaEnd, _, _ := v.Heap.MemUse()
		res.ArenaEndMB = float64(arenaEnd) / (1 << 20)
	})
	return res, runErr
}

// RunGCBench runs the serial and modern collectors over the same
// driver and reports the pause distributions.
func RunGCBench(cfg GCConfig) (GCReport, error) {
	rep := GCReport{Protocol: map[string]int{
		"live_mb":       cfg.LiveMB,
		"rounds":        cfg.Rounds,
		"churn_kb":      cfg.ChurnKB,
		"window_rounds": cfg.WindowRounds,
		"young_kb":      cfg.YoungKB,
		"growth_pct":    cfg.GrowthPct,
		"forced_fulls":  cfg.ForcedFulls,
		"gomaxprocs":    runtime.GOMAXPROCS(0),
		"numcpu":        runtime.NumCPU(),
	}}
	serial, err := runGCMode(cfg, 1, "serial")
	if err != nil {
		return rep, fmt.Errorf("serial: %w", err)
	}
	rep.Modes = append(rep.Modes, serial)
	runtime.GC()
	modern, err := runGCMode(cfg, 0, "modern")
	if err != nil {
		return rep, fmt.Errorf("modern: %w", err)
	}
	rep.Modes = append(rep.Modes, modern)
	if modern.Pauses.P99Us > 0 {
		rep.P99Reduction = serial.Pauses.P99Us / modern.Pauses.P99Us
	}
	return rep, nil
}

// MarshalGCReport renders the report as indented JSON.
func MarshalGCReport(rep GCReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// FormatGCTable renders the result as text.
func FormatGCTable(rep GCReport) string {
	s := fmt.Sprintf("GC pauses at %d MiB live heap (%d churn rounds, full collect on +%d%% footprint)\n",
		rep.Protocol["live_mb"], rep.Protocol["rounds"], rep.Protocol["growth_pct"])
	s += fmt.Sprintf("%-8s %8s %6s %10s %10s %10s %10s %9s %6s %6s %8s %6s %6s %10s\n",
		"mode", "workers", "n", "p50(us)", "p95(us)", "p99(us)", "max(us)", "total(ms)", "scav", "full", "donated", "segr", "recyc", "arena(MB)")
	for _, m := range rep.Modes {
		s += fmt.Sprintf("%-8s %8d %6d %10.1f %10.1f %10.1f %10.1f %9.1f %6d %6d %8d %6d %6d %5.0f→%-4.0f\n",
			m.Mode, m.Workers, m.Pauses.Count, m.Pauses.P50Us, m.Pauses.P95Us, m.Pauses.P99Us, m.Pauses.MaxUs,
			m.Pauses.TotalMs, m.Scavenges, m.FullGCs, m.BlocksDonated, m.PinnedSegregated, m.NurseriesRecycled,
			m.ArenaStartMB, m.ArenaEndMB)
	}
	s += fmt.Sprintf("p99 reduction (serial/modern): %.1fx\n", rep.P99Reduction)
	for _, m := range rep.Modes {
		s += fmt.Sprintf("forced full GC (%s): %.1f ms mean over %d runs\n",
			m.Mode, m.ForcedFullMs, rep.Protocol["forced_fulls"])
	}
	return s
}
