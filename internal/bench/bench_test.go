package bench

import (
	"strings"
	"testing"

	"motor/internal/baseline/pinvoke"
	"motor/internal/serial"
)

func TestFig9QuickAllImpls(t *testing.T) {
	sizes := []int{4, 256, 4096}
	series, err := Fig9(Quick(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(sizes) {
			t.Errorf("%s: %d points", s.Impl, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Err != "" {
				t.Errorf("%s@%d: %s", s.Impl, p.X, p.Err)
			}
			if p.Us <= 0 {
				t.Errorf("%s@%d: non-positive time %f", s.Impl, p.X, p.Us)
			}
		}
	}
	table := FormatTable("Figure 9", "bytes", series)
	for _, want := range []string{"C++", "Motor", "Indiana SSCLI", "Indiana .NET", "Java", "4096"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestFig10QuickAllImpls(t *testing.T) {
	counts := []int{2, 16, 64}
	series, err := Fig10(Quick(), counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(counts) {
			t.Errorf("%s: %d points", s.Impl, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Err != "" {
				t.Errorf("%s@%d: %s", s.Impl, p.X, p.Err)
			}
		}
	}
}

func TestFig10JavaStopsAtStackOverflow(t *testing.T) {
	// The mpiJava series must end with a FAIL point once the element
	// count exceeds the recursive serializer's depth (paper: stops
	// after 1024 total objects).
	counts := []int{1024, 2048, 4096}
	s, err := RunObj(JavaObjImpl(), Quick(), counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points: %+v", s.Points)
	}
	if s.Points[0].Err != "" {
		t.Errorf("1024 objects should succeed: %s", s.Points[0].Err)
	}
	if s.Points[1].X != 2048 || s.Points[1].Err == "" {
		t.Errorf("2048 objects should fail with stack overflow: %+v", s.Points[1])
	}
	if !strings.Contains(s.Points[1].Err, "stack overflow") {
		t.Errorf("failure reason %q", s.Points[1].Err)
	}
}

func TestFig9StatsComputation(t *testing.T) {
	series := []Series{
		{Impl: "Motor", Points: []Point{{X: 1024, Us: 90}, {X: 131072, Us: 950}}},
		{Impl: "Indiana SSCLI", Points: []Point{{X: 1024, Us: 100}, {X: 131072, Us: 1000}}},
	}
	st := ComputeFig9Stats(series)
	if !st.CrossChecked {
		t.Fatal("not cross-checked")
	}
	if st.PeakPct < 9.9 || st.PeakPct > 10.1 {
		t.Errorf("peak %.2f", st.PeakPct)
	}
	if st.MeanPct < 7.4 || st.MeanPct > 7.6 {
		t.Errorf("mean %.2f", st.MeanPct)
	}
	if st.MeanBigPct < 4.9 || st.MeanBigPct > 5.1 {
		t.Errorf("mean big %.2f", st.MeanBigPct)
	}
}

func TestAblationsQuick(t *testing.T) {
	a1, err := AblationPinPolicy(Quick(), []int{256})
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 2 || a1[0].Impl == a1[1].Impl {
		t.Errorf("A1 series: %+v", a1)
	}
	a2, err := AblationVisited(Quick(), []int{32})
	if err != nil {
		t.Fatal(err)
	}
	if len(a2) != 2 {
		t.Errorf("A2 series: %+v", a2)
	}
}

func TestIndianaProfilesBothRun(t *testing.T) {
	for _, host := range []pinvoke.Host{pinvoke.HostSSCLI, pinvoke.HostNET} {
		s, err := RunObj(IndianaObjImpl(host), Quick(), []int{128})
		if err != nil {
			t.Fatalf("%v: %v", host, err)
		}
		if len(s.Points) != 1 || s.Points[0].Err != "" {
			t.Errorf("%v: %+v", host, s.Points)
		}
	}
}

func TestVisitedMapMatchesLinearResults(t *testing.T) {
	// Correctness: both visited modes must transport identical
	// structures (A2 is a performance-only difference).
	for _, mode := range []serial.VisitedMode{serial.VisitedLinear, serial.VisitedMap} {
		s, err := RunObj(MotorOOImpl(mode), Quick(), []int{64})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if s.Points[0].Err != "" {
			t.Errorf("mode %d: %s", mode, s.Points[0].Err)
		}
	}
}

func TestPolicyBehaviourCounters(t *testing.T) {
	rows, err := RunPolicyBehaviour(80, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	motor, always := rows[0], rows[1]
	// The paper's policy must register conditional requests for the
	// outstanding non-blocking receives and never pin eagerly.
	if motor.CondPins == 0 {
		t.Errorf("Motor policy registered no conditional pins: %+v", motor)
	}
	if motor.PinEager != 0 {
		t.Errorf("Motor policy pinned eagerly: %+v", motor)
	}
	// The wrapper discipline pins every operation and never uses
	// conditional requests.
	if always.PinEager == 0 {
		t.Errorf("always-pin took no eager pins: %+v", always)
	}
	if always.CondPins != 0 {
		t.Errorf("always-pin registered conditional pins: %+v", always)
	}
	// Under churn, collections ran and some conditional requests were
	// held across a mark phase (the object was in flight) or dropped
	// (complete).
	if motor.Scavenges == 0 {
		t.Error("no collections; workload too light")
	}
	out := FormatPolicyBehaviour(rows)
	if !strings.Contains(out, "Motor") || !strings.Contains(out, "always-pin") {
		t.Errorf("table:\n%s", out)
	}
}

func TestVerifyOrdering(t *testing.T) {
	good := []Series{
		{Impl: "C++", Points: []Point{{X: 128, Us: 1}, {X: 4096, Us: 4}}},
		{Impl: "Motor", Points: []Point{{X: 128, Us: 1.05}, {X: 4096, Us: 4.2}}},
		{Impl: "Java", Points: []Point{{X: 128, Us: 1.5}, {X: 4096, Us: 6}}},
	}
	if v := VerifyOrdering(good, 64); v != "" {
		t.Errorf("good ordering flagged: %s", v)
	}
	bad := []Series{
		{Impl: "C++", Points: []Point{{X: 4096, Us: 9}}},
		{Impl: "Motor", Points: []Point{{X: 4096, Us: 4}}},
		{Impl: "Java", Points: []Point{{X: 4096, Us: 2}}},
	}
	v := VerifyOrdering(bad, 64)
	if !strings.Contains(v, "C++") || !strings.Contains(v, "Java") {
		t.Errorf("violations not reported: %q", v)
	}
	if v := VerifyOrdering(nil, 64); v != "missing series" {
		t.Errorf("missing series: %q", v)
	}
}
