package bench

import (
	"encoding/binary"
	"fmt"

	"motor/internal/baseline/cliser"
	"motor/internal/baseline/javaser"
	"motor/internal/baseline/jni"
	"motor/internal/baseline/native"
	"motor/internal/baseline/pinvoke"
	"motor/internal/core"
	"motor/internal/mp"
	"motor/internal/serial"
	"motor/internal/vm"
)

// The per-implementation adapters. Every managed implementation runs
// on its own Motor VM instance; the differences measured are exactly
// the architectural ones the paper attributes: call path (FCall vs
// P/Invoke vs JNI), pinning discipline (policy vs always vs
// copy), and serialization mechanism.

func benchVM(name string, pinMode vm.PinMode) *vm.VM {
	return vm.New(vm.Config{
		Name: name,
		Heap: vm.HeapConfig{YoungSize: 2 << 20, InitialElder: 8 << 20, ArenaMax: 512 << 20, PinMode: pinMode},
	})
}

// --- Figure 9 implementations -------------------------------------------------

// nativeRank is the C++ / MPICH2 line.
type nativeRank struct{ r *native.Rank }

// The methods below implement the pingRank harness interface.

func (n *nativeRank) SetSize(s int) error        { n.r.SetBuffer(s); return nil }
func (n *nativeRank) Send(dest, tag int) error   { return n.r.Send(dest, tag) }
func (n *nativeRank) Recv(source, tag int) error { _, err := n.r.Recv(source, tag); return err }
func (n *nativeRank) Close()                     {}

// NativeImpl is the C++ baseline.
func NativeImpl() PingImpl {
	return PingImpl{Name: "C++", New: func(w *mp.World) (pingRank, error) {
		return &nativeRank{native.New(w)}, nil
	}}
}

// motorRank is the Motor line: managed buffers through the runtime-
// integrated engine (FCall path + pinning policy).
type motorRank struct {
	v   *vm.VM
	e   *core.Engine
	th  *vm.Thread
	buf vm.Ref
	h   vm.Handle
}

func (m *motorRank) SetSize(s int) error {
	if m.h != vm.InvalidHandle {
		m.v.Handles.Free(m.h)
	}
	ref, err := m.v.Heap.AllocArray(m.v.ArrayType(vm.KindUint8, nil, 1), s)
	if err != nil {
		return err
	}
	m.h = m.v.Handles.Alloc(ref)
	m.buf = ref
	return nil
}

func (m *motorRank) Send(dest, tag int) error {
	return m.e.Send(m.th, m.v.Handles.Get(m.h), dest, tag)
}

func (m *motorRank) Recv(source, tag int) error {
	_, err := m.e.Recv(m.th, m.v.Handles.Get(m.h), source, tag)
	return err
}

func (m *motorRank) Close() { m.th.End() }

// MotorImpl is the paper's contribution, with its pinning policy.
func MotorImpl() PingImpl { return motorImplWithPolicy("Motor", core.PolicyMotor) }

// MotorAlwaysPinImpl is ablation A1: Motor with wrapper-style eager
// pinning instead of the policy.
func MotorAlwaysPinImpl() PingImpl {
	return motorImplWithPolicy("Motor(always-pin)", core.PolicyAlwaysPin)
}

func motorImplWithPolicy(name string, p core.PinPolicy) PingImpl {
	return PingImpl{Name: name, New: func(w *mp.World) (pingRank, error) {
		v := benchVM(fmt.Sprintf("motor%d", w.Rank()), vm.PinHandleTable)
		e := core.Attach(v, w, core.WithPolicy(p))
		return &motorRank{v: v, e: e, th: v.StartThread("bench"), h: vm.InvalidHandle}, nil
	}}
}

// pinvokeRank is an Indiana-bindings line (P/Invoke wrapper).
type pinvokeRank struct {
	v  *vm.VM
	b  *pinvoke.Binding
	th *vm.Thread
	h  vm.Handle
}

func (p *pinvokeRank) SetSize(s int) error {
	if p.h != vm.InvalidHandle {
		p.v.Handles.Free(p.h)
	}
	ref, err := p.v.Heap.AllocArray(p.v.ArrayType(vm.KindUint8, nil, 1), s)
	if err != nil {
		return err
	}
	p.h = p.v.Handles.Alloc(ref)
	return nil
}

func (p *pinvokeRank) Send(dest, tag int) error {
	return p.b.Send(p.th, p.v.Handles.Get(p.h), dest, tag)
}

func (p *pinvokeRank) Recv(source, tag int) error {
	_, err := p.b.Recv(p.th, p.v.Handles.Get(p.h), source, tag)
	return err
}

func (p *pinvokeRank) Close() { p.th.End() }

// IndianaImpl is the Indiana C# bindings hosted by the given runtime:
// HostSSCLI uses the research runtime's linear pin list, HostNET the
// commercial handle table.
func IndianaImpl(host pinvoke.Host) PingImpl {
	name := "Indiana " + host.String()
	return PingImpl{Name: name, New: func(w *mp.World) (pingRank, error) {
		pinMode := vm.PinHandleTable
		if host == pinvoke.HostSSCLI {
			pinMode = vm.PinLinearList
		}
		v := benchVM(fmt.Sprintf("indiana%d", w.Rank()), pinMode)
		b := pinvoke.New(v, w, host)
		return &pinvokeRank{v: v, b: b, th: v.StartThread("bench"), h: vm.InvalidHandle}, nil
	}}
}

// jniRank is the mpiJava line (JNI wrapper with copy semantics).
type jniRank struct {
	v  *vm.VM
	b  *jni.Binding
	th *vm.Thread
	h  vm.Handle
}

func (j *jniRank) SetSize(s int) error {
	if j.h != vm.InvalidHandle {
		j.v.Handles.Free(j.h)
	}
	ref, err := j.v.Heap.AllocArray(j.v.ArrayType(vm.KindUint8, nil, 1), s)
	if err != nil {
		return err
	}
	j.h = j.v.Handles.Alloc(ref)
	return nil
}

func (j *jniRank) Send(dest, tag int) error {
	return j.b.Send(j.th, j.v.Handles.Get(j.h), dest, tag)
}

func (j *jniRank) Recv(source, tag int) error {
	_, err := j.b.Recv(j.th, j.v.Handles.Get(j.h), source, tag)
	return err
}

func (j *jniRank) Close() { j.th.End() }

// JavaImpl is the mpiJava line.
func JavaImpl() PingImpl {
	return PingImpl{Name: "Java", New: func(w *mp.World) (pingRank, error) {
		v := benchVM(fmt.Sprintf("java%d", w.Rank()), vm.PinHandleTable)
		b := jni.New(v, w)
		return &jniRank{v: v, b: b, th: v.StartThread("bench"), h: vm.InvalidHandle}, nil
	}}
}

// Fig9Impls returns the paper's five series in its legend order.
func Fig9Impls() []PingImpl {
	return []PingImpl{
		JavaImpl(),
		IndianaImpl(pinvoke.HostSSCLI),
		IndianaImpl(pinvoke.HostNET),
		MotorImpl(),
		NativeImpl(),
	}
}

// --- Figure 10 implementations --------------------------------------------------

// cellClass registers the benchmark list type: one payload byte array
// and a next link per element (the paper's Fig. 5 LinkedArray with
// the unused next2 omitted from traffic by construction). The
// Transportable bits matter only to Motor; the opt-out serializers
// ignore them.
func cellClass(v *vm.VM) *vm.MethodTable {
	mt, err := v.DeclareClass("Cell")
	if err != nil {
		panic(err)
	}
	u8arr := v.ArrayType(vm.KindUint8, nil, 1)
	if err := v.CompleteClass(mt, nil, []vm.FieldSpec{
		{Name: "data", Kind: vm.KindRef, Type: u8arr, Transportable: true},
		{Name: "next", Kind: vm.KindRef, Type: mt, Transportable: true},
	}); err != nil {
		panic(err)
	}
	return mt
}

// buildCells constructs the benchmark list on a VM, returning the
// head; the caller must root it.
func buildCells(v *vm.VM, mt *vm.MethodTable, elements, totalBytes int) (vm.Ref, error) {
	h := v.Heap
	fData, fNext := mt.FieldByName("data"), mt.FieldByName("next")
	per := totalBytes / elements
	if per < 1 {
		per = 1
	}
	guard := &vm.RefRoots{Refs: make([]vm.Ref, 2)}
	v.AddRootProvider(guard)
	defer v.RemoveRootProvider(guard)
	for i := elements - 1; i >= 0; i-- {
		node, err := h.AllocClass(mt)
		if err != nil {
			return vm.NullRef, err
		}
		guard.Refs[1] = node
		arr, err := h.AllocArray(v.ArrayType(vm.KindUint8, nil, 1), per)
		if err != nil {
			return vm.NullRef, err
		}
		node = guard.Refs[1]
		h.SetRef(node, fData, arr)
		payload := h.DataBytes(arr)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		if guard.Refs[0] != vm.NullRef {
			h.SetRef(node, fNext, guard.Refs[0])
		}
		guard.Refs[0] = node
	}
	return guard.Refs[0], nil
}

// motorOORank uses the extended object-oriented operations.
type motorOORank struct {
	v    *vm.VM
	e    *core.Engine
	th   *vm.Thread
	mt   *vm.MethodTable
	head vm.Handle
}

func newMotorOORank(w *mp.World, visited serial.VisitedMode) (*motorOORank, error) {
	v := benchVM(fmt.Sprintf("motorOO%d", w.Rank()), vm.PinHandleTable)
	e := core.Attach(v, w, core.WithVisited(visited))
	return &motorOORank{v: v, e: e, th: v.StartThread("bench"), mt: cellClass(v), head: vm.InvalidHandle}, nil
}

func (m *motorOORank) Build(elements, totalBytes int) error {
	if m.head != vm.InvalidHandle {
		m.v.Handles.Free(m.head)
	}
	head, err := buildCells(m.v, m.mt, elements, totalBytes)
	if err != nil {
		return err
	}
	m.head = m.v.Handles.Alloc(head)
	return nil
}

func (m *motorOORank) Probe() error {
	data, err := serial.Serialize(m.v.Heap, m.v.Handles.Get(m.head), serial.Options{}, nil)
	_ = data
	return err
}

func (m *motorOORank) Initiate(peer int) error {
	if err := m.e.OSend(m.th, m.v.Handles.Get(m.head), peer, 1); err != nil {
		return err
	}
	_, _, err := m.e.ORecv(m.th, peer, 1)
	return err
}

func (m *motorOORank) Echo(peer int) error {
	got, _, err := m.e.ORecv(m.th, peer, 1)
	if err != nil {
		return err
	}
	// Protect the received tree across the send (which may collect).
	pop := m.th.PushFrame(&got)
	defer pop()
	return m.e.OSend(m.th, got, peer, 1)
}

func (m *motorOORank) Close() { m.th.End() }

// MotorOOImpl is the Motor object-transport line. The visited mode
// defaults to the paper's linear list.
func MotorOOImpl(visited serial.VisitedMode) ObjImpl {
	name := "Motor"
	if visited == serial.VisitedMap {
		name = "Motor(map-visited)"
	}
	return ObjImpl{Name: name, New: func(w *mp.World) (objRank, error) {
		return newMotorOORank(w, visited)
	}}
}

// wrapperObjRank is shared machinery for the Java and Indiana object
// lines: serialize with the standard mechanism, stage the stream into
// a managed byte array, and ship it with the wrapper transport
// (4-byte size prefix first, as mpiJava does).
type wrapperObjRank struct {
	v    *vm.VM
	th   *vm.Thread
	mt   *vm.MethodTable
	head vm.Handle

	ser   func(root vm.Ref) ([]byte, error)
	deser func(data []byte) (vm.Ref, error)
	send  func(t *vm.Thread, obj vm.Ref, dest, tag int) error
	recv  func(t *vm.Thread, obj vm.Ref, source, tag int) (mp.Status, error)
}

func (r *wrapperObjRank) Build(elements, totalBytes int) error {
	if r.head != vm.InvalidHandle {
		r.v.Handles.Free(r.head)
	}
	head, err := buildCells(r.v, r.mt, elements, totalBytes)
	if err != nil {
		return err
	}
	r.head = r.v.Handles.Alloc(head)
	return nil
}

func (r *wrapperObjRank) Probe() error {
	_, err := r.ser(r.v.Handles.Get(r.head))
	return err
}

// sendTree serializes root and ships size + stream.
func (r *wrapperObjRank) sendTree(root vm.Ref, peer int) error {
	stream, err := r.ser(root)
	if err != nil {
		return err
	}
	h := r.v.Heap
	// Stage the stream into a managed byte[] (MemoryStream.ToArray /
	// ByteArrayOutputStream.toByteArray), then hand it to the
	// wrapper transport.
	var sz [4]byte
	binary.LittleEndian.PutUint32(sz[:], uint32(len(stream)))
	szRef, err := h.NewUint8Array(sz[:])
	if err != nil {
		return err
	}
	pop := r.th.PushFrame(&szRef)
	dataRef, err := h.NewUint8Array(stream)
	pop()
	if err != nil {
		return err
	}
	if err := r.send(r.th, szRef, peer, 2); err != nil {
		return err
	}
	return r.send(r.th, dataRef, peer, 2)
}

// recvTree receives size + stream and deserializes.
func (r *wrapperObjRank) recvTree(peer int) (vm.Ref, error) {
	h := r.v.Heap
	szRef, err := h.NewUint8Array(make([]byte, 4))
	if err != nil {
		return vm.NullRef, err
	}
	if _, err := r.recv(r.th, szRef, peer, 2); err != nil {
		return vm.NullRef, err
	}
	size := binary.LittleEndian.Uint32(h.DataBytes(szRef))
	dataRef, err := h.AllocArray(r.v.ArrayType(vm.KindUint8, nil, 1), int(size))
	if err != nil {
		return vm.NullRef, err
	}
	if _, err := r.recv(r.th, dataRef, peer, 2); err != nil {
		return vm.NullRef, err
	}
	// Copy out of the managed array at the wrapper boundary, then
	// deserialize.
	stream := h.Uint8Slice(dataRef)
	return r.deser(stream)
}

func (r *wrapperObjRank) Initiate(peer int) error {
	if err := r.sendTree(r.v.Handles.Get(r.head), peer); err != nil {
		return err
	}
	_, err := r.recvTree(peer)
	return err
}

func (r *wrapperObjRank) Echo(peer int) error {
	got, err := r.recvTree(peer)
	if err != nil {
		return err
	}
	pop := r.th.PushFrame(&got)
	defer pop()
	return r.sendTree(got, peer)
}

func (r *wrapperObjRank) Close() { r.th.End() }

// JavaObjImpl is the mpiJava line of Figure 10: Java serialization
// over the JNI wrapper.
func JavaObjImpl() ObjImpl {
	return ObjImpl{Name: "mpiJava", New: func(w *mp.World) (objRank, error) {
		v := benchVM(fmt.Sprintf("javaobj%d", w.Rank()), vm.PinHandleTable)
		b := jni.New(v, w)
		r := &wrapperObjRank{v: v, th: v.StartThread("bench"), mt: cellClass(v), head: vm.InvalidHandle}
		r.ser = func(root vm.Ref) ([]byte, error) { return javaser.Serialize(v.Heap, root) }
		r.deser = func(data []byte) (vm.Ref, error) { return javaser.Deserialize(v, data) }
		r.send = b.Send
		r.recv = b.Recv
		return r, nil
	}}
}

// IndianaObjImpl is an Indiana line of Figure 10: CLI binary
// serialization over the P/Invoke wrapper, per hosting runtime.
func IndianaObjImpl(host pinvoke.Host) ObjImpl {
	var profile cliser.Profile
	if host == pinvoke.HostNET {
		profile = cliser.ProfileNET
	} else {
		profile = cliser.ProfileSSCLI
	}
	name := "Indiana " + host.String()
	return ObjImpl{Name: name, New: func(w *mp.World) (objRank, error) {
		pinMode := vm.PinHandleTable
		if host == pinvoke.HostSSCLI {
			pinMode = vm.PinLinearList
		}
		v := benchVM(fmt.Sprintf("indobj%d", w.Rank()), pinMode)
		b := pinvoke.New(v, w, host)
		r := &wrapperObjRank{v: v, th: v.StartThread("bench"), mt: cellClass(v), head: vm.InvalidHandle}
		r.ser = func(root vm.Ref) ([]byte, error) { return cliser.Serialize(v.Heap, root, profile) }
		r.deser = func(data []byte) (vm.Ref, error) { return cliser.Deserialize(v, data) }
		r.send = b.Send
		r.recv = b.Recv
		return r, nil
	}}
}

// Fig10Impls returns the paper's four series.
func Fig10Impls() []ObjImpl {
	return []ObjImpl{
		MotorOOImpl(serial.VisitedLinear),
		JavaObjImpl(),
		IndianaObjImpl(pinvoke.HostNET),
		IndianaObjImpl(pinvoke.HostSSCLI),
	}
}
