package bench

import (
	"fmt"
	"time"

	"motor/internal/mp"
)

// Interleaved ping-pong measurement. Running each implementation's
// full sweep back to back lets minutes-scale machine drift (shared
// hosts, frequency scaling) masquerade as implementation differences.
// Instead, every implementation's world is kept alive simultaneously
// and the driver dispatches (size, repeat) rounds across them
// round-robin, so all series sample the same time windows. Idle
// worlds cost nothing: their rank goroutines block on command
// channels.

type pingCmd struct {
	size   int
	warmup int
	timed  int
	quit   bool
}

type pingRes struct {
	us  float64 // rank 0 only; 0 from rank 1
	err error
}

// pingWorker owns one implementation's live 2-rank world.
type pingWorker struct {
	name string
	cmds [2]chan pingCmd
	res  [2]chan pingRes
}

func startPingWorker(impl PingImpl, kind mp.ChannelKind, eagerMax int) (*pingWorker, error) {
	worlds, err := mp.NewLocalWorlds(kind, 2, eagerMax)
	if err != nil {
		return nil, err
	}
	w := &pingWorker{name: impl.Name}
	for i := 0; i < 2; i++ {
		w.cmds[i] = make(chan pingCmd)
		w.res[i] = make(chan pingRes)
	}
	for _, world := range worlds {
		go func(world *mp.World) {
			defer world.Close()
			me := world.Rank()
			pr, err := impl.New(world)
			if err != nil {
				// Report the construction error on the first command.
				for cmd := range w.cmds[me] {
					if cmd.quit {
						w.res[me] <- pingRes{}
						return
					}
					w.res[me] <- pingRes{err: fmt.Errorf("%s rank %d: %w", impl.Name, me, err)}
				}
				return
			}
			defer pr.Close()
			peer := 1 - me
			size := -1
			for cmd := range w.cmds[me] {
				if cmd.quit {
					w.res[me] <- pingRes{}
					return
				}
				if cmd.size != size {
					if err := pr.SetSize(cmd.size); err != nil {
						w.res[me] <- pingRes{err: err}
						continue
					}
					size = cmd.size
				}
				var t0 time.Time
				var runErr error
				for i := 0; i < cmd.warmup+cmd.timed; i++ {
					if i == cmd.warmup {
						t0 = time.Now()
					}
					if me == 0 {
						if runErr = pr.Send(peer, 0); runErr != nil {
							break
						}
						if runErr = pr.Recv(peer, 0); runErr != nil {
							break
						}
					} else {
						if runErr = pr.Recv(peer, 0); runErr != nil {
							break
						}
						if runErr = pr.Send(peer, 0); runErr != nil {
							break
						}
					}
				}
				if runErr != nil {
					w.res[me] <- pingRes{err: fmt.Errorf("%s size %d: %w", impl.Name, cmd.size, runErr)}
					continue
				}
				us := 0.0
				if me == 0 {
					us = float64(time.Since(t0).Nanoseconds()) / 1e3 / float64(cmd.timed)
				}
				w.res[me] <- pingRes{us: us}
			}
		}(world)
	}
	return w, nil
}

// round dispatches one measurement to both ranks and returns rank 0's
// time.
func (w *pingWorker) round(cmd pingCmd) (float64, error) {
	w.cmds[0] <- cmd
	w.cmds[1] <- cmd
	r0 := <-w.res[0]
	r1 := <-w.res[1]
	if r0.err != nil {
		return 0, r0.err
	}
	if r1.err != nil {
		return 0, r1.err
	}
	return r0.us, nil
}

func (w *pingWorker) stop() {
	for i := 0; i < 2; i++ {
		w.cmds[i] <- pingCmd{quit: true}
		<-w.res[i]
		close(w.cmds[i])
	}
}

// RunPingSet measures several implementations with repeats
// interleaved across them (see package comment). Results are the
// per-(impl, size) medians.
func RunPingSet(impls []PingImpl, proto Protocol, sizes []int) ([]Series, error) {
	workers := make([]*pingWorker, len(impls))
	for i, impl := range impls {
		w, err := startPingWorker(impl, proto.Channel, proto.EagerMax)
		if err != nil {
			return nil, err
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			w.stop()
		}
	}()
	samples := make([][][]float64, len(impls))
	for i := range samples {
		samples[i] = make([][]float64, len(sizes))
	}
	for si, size := range sizes {
		for rep := 0; rep < proto.Repeats; rep++ {
			for wi, w := range workers {
				us, err := w.round(pingCmd{size: size, warmup: proto.Warmup, timed: proto.Timed})
				if err != nil {
					return nil, err
				}
				samples[wi][si] = append(samples[wi][si], us)
			}
		}
	}
	series := make([]Series, len(impls))
	for wi, impl := range impls {
		series[wi].Impl = impl.Name
		for si, size := range sizes {
			series[wi].Points = append(series[wi].Points, Point{X: size, Us: median(samples[wi][si])})
		}
	}
	return series, nil
}
