package bench

import (
	"fmt"
	"sort"
	"strings"

	"motor/internal/mp"
	"motor/internal/serial"
)

// Figure-level runners and the derived statistics quoted in the
// paper's prose.

// Fig9 runs the regular-operations ping-pong for every Figure 9
// implementation, with repeats interleaved across implementations so
// machine drift affects every series equally.
func Fig9(proto Protocol, sizes []int) ([]Series, error) {
	return RunPingSet(Fig9Impls(), proto, sizes)
}

// Fig10 runs the object-transport ping-pong for every Figure 10
// implementation.
func Fig10(proto Protocol, counts []int) ([]Series, error) {
	var out []Series
	for _, impl := range Fig10Impls() {
		s, err := RunObj(impl, proto, counts)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig9Stats are the derived statistics of §8: Motor's advantage over
// the Indiana bindings hosted on the SSCLI ("16% at a peak; 8% on
// average over all buffer sizes; and 3% on average over buffer sizes
// greater than 65,536 bytes").
type Fig9Stats struct {
	PeakPct      float64
	MeanPct      float64
	MeanBigPct   float64 // buffers > 65536 bytes
	CrossChecked bool    // both series present with matching points
}

// ComputeFig9Stats derives the §8 statistics from a Fig9 run.
func ComputeFig9Stats(series []Series) Fig9Stats {
	var motor, indiana *Series
	for i := range series {
		switch series[i].Impl {
		case "Motor":
			motor = &series[i]
		case "Indiana SSCLI":
			indiana = &series[i]
		}
	}
	var st Fig9Stats
	if motor == nil || indiana == nil {
		return st
	}
	idx := make(map[int]float64, len(indiana.Points))
	for _, p := range indiana.Points {
		if p.Err == "" {
			idx[p.X] = p.Us
		}
	}
	var pcts []float64
	var bigPcts []float64
	for _, p := range motor.Points {
		ind, ok := idx[p.X]
		if !ok || p.Err != "" || ind <= 0 {
			continue
		}
		pct := (ind - p.Us) / ind * 100
		pcts = append(pcts, pct)
		if p.X > 65536 {
			bigPcts = append(bigPcts, pct)
		}
	}
	if len(pcts) == 0 {
		return st
	}
	st.CrossChecked = true
	st.PeakPct = pcts[0]
	for _, p := range pcts {
		if p > st.PeakPct {
			st.PeakPct = p
		}
		st.MeanPct += p
	}
	st.MeanPct /= float64(len(pcts))
	for _, p := range bigPcts {
		st.MeanBigPct += p
	}
	if len(bigPcts) > 0 {
		st.MeanBigPct /= float64(len(bigPcts))
	}
	return st
}

// FormatTable renders series as an aligned text table, one row per X
// value, matching the figures' axes.
func FormatTable(title, xlabel string, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	// Collect the union of X values.
	xset := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xset[p.X] = true
		}
	}
	xs := make([]int, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	fmt.Fprintf(&sb, "%12s", xlabel)
	for _, s := range series {
		fmt.Fprintf(&sb, " %16s", s.Impl)
	}
	sb.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&sb, "%12d", x)
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					if p.Err != "" {
						cell = "FAIL"
					} else {
						cell = fmt.Sprintf("%.1f", p.Us)
					}
					break
				}
			}
			if cell == "" {
				cell = "-"
			}
			fmt.Fprintf(&sb, " %16s", cell)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// --- ablation sweeps ------------------------------------------------------------

// AblationPinPolicy (A1) compares the paper's pinning policy against
// wrapper-style always-pin on the regular ping-pong (interleaved).
func AblationPinPolicy(proto Protocol, sizes []int) ([]Series, error) {
	return RunPingSet([]PingImpl{MotorImpl(), MotorAlwaysPinImpl()}, proto, sizes)
}

// AblationEagerThreshold (A5) sweeps the eager/rendezvous switchover
// of the transport on the native baseline — the classic MPICH tuning
// knob the device layer inherits (§6). Each series is one threshold.
func AblationEagerThreshold(proto Protocol, sizes []int, thresholds []int) ([]Series, error) {
	var out []Series
	for _, th := range thresholds {
		p := proto
		p.EagerMax = th
		s, err := RunPing(NativeImpl(), p, sizes)
		if err != nil {
			return out, err
		}
		s.Impl = fmt.Sprintf("eager<=%dKiB", th/1024)
		out = append(out, s)
	}
	return out, nil
}

// AblationVisited (A2) compares the serializer's linear visited list
// (paper) against the hashed set (future work) on the object
// ping-pong.
func AblationVisited(proto Protocol, counts []int) ([]Series, error) {
	var out []Series
	for _, impl := range []ObjImpl{MotorOOImpl(serial.VisitedLinear), MotorOOImpl(serial.VisitedMap)} {
		s, err := RunObj(impl, proto, counts)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// VerifyOrdering checks the headline qualitative result of Figure 9:
// for buffers >= minSize, C++ <= Motor <= Indiana lines <= Java.
// It returns a description of any violation (empty = holds).
func VerifyOrdering(series []Series, minSize int) string {
	get := func(name string) map[int]float64 {
		for _, s := range series {
			if s.Impl == name {
				m := map[int]float64{}
				for _, p := range s.Points {
					m[p.X] = p.Us
				}
				return m
			}
		}
		return nil
	}
	cpp, motor, java := get("C++"), get("Motor"), get("Java")
	if cpp == nil || motor == nil || java == nil {
		return "missing series"
	}
	var violations []string
	for x, m := range motor {
		if x < minSize {
			continue
		}
		if c, ok := cpp[x]; ok && c > m*1.10 {
			violations = append(violations, fmt.Sprintf("x=%d: C++ (%.1f) slower than Motor (%.1f)", x, c, m))
		}
		if j, ok := java[x]; ok && j < m*0.90 {
			violations = append(violations, fmt.Sprintf("x=%d: Java (%.1f) faster than Motor (%.1f)", x, j, m))
		}
	}
	sort.Strings(violations)
	return strings.Join(violations, "; ")
}

// RunPingN runs one implementation at one size for exactly n timed
// round trips (testing.B integration).
func RunPingN(impl PingImpl, size, n int) (float64, error) {
	proto := Protocol{Warmup: 3, Timed: n, Repeats: 1, Channel: mp.ChannelShm}
	s, err := RunPing(impl, proto, []int{size})
	if err != nil {
		return 0, err
	}
	if len(s.Points) == 0 {
		return 0, fmt.Errorf("no points for %s", impl.Name)
	}
	return s.Points[0].Us, nil
}

// RunObjN runs one object implementation at one total-object count
// for exactly n timed round trips (testing.B integration).
func RunObjN(impl ObjImpl, totalObjects, n int) (float64, error) {
	proto := Protocol{Warmup: 2, Timed: n, Repeats: 1, Channel: mp.ChannelShm}
	s, err := RunObj(impl, proto, []int{totalObjects})
	if err != nil {
		return 0, err
	}
	if len(s.Points) == 0 {
		return 0, fmt.Errorf("no points for %s", impl.Name)
	}
	if s.Points[0].Err != "" {
		return 0, fmt.Errorf("%s: %s", impl.Name, s.Points[0].Err)
	}
	return s.Points[0].Us, nil
}
