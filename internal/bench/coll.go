package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"motor/internal/mp"
)

// Collective size sweep: measures each collective algorithm across
// message sizes at a configurable rank count, so the size-aware
// selector's crossover points can be validated on the machine at hand
// (and regressions in the bandwidth algorithms caught). Shared by
// cmd/benchfig -coll and scripts/bench_coll.sh.

// CollSpec is one measured configuration: a collective operation and
// a forced algorithm ("auto" leaves the selector in charge).
type CollSpec struct {
	Op   string // "allreduce", "allgather" or "bcast"
	Algo string // "auto" or a forced algorithm name
}

func (s CollSpec) label() string { return s.Op + "/" + s.Algo }

// CollSizes is the sweep grid: 256 B … 512 KiB, powers of two. The
// small end exercises the latency algorithms, the large end the
// bandwidth (ring / pipelined) algorithms; selector crossovers are at
// 16–64 KiB.
func CollSizes() []int {
	var out []int
	for s := 256; s <= 512<<10; s *= 4 {
		out = append(out, s)
	}
	return out
}

// CollSweepSpecs pairs each operation's seed-shaped baseline with the
// new algorithms and the selector.
func CollSweepSpecs() []CollSpec {
	return []CollSpec{
		{"allreduce", "reducebcast"}, // seed baseline
		{"allreduce", "recdbl"},
		{"allreduce", "ring"},
		{"allreduce", "auto"},
		{"allgather", "gatherbcast"}, // seed baseline
		{"allgather", "ring"},
		{"allgather", "auto"},
		{"bcast", "binomial"}, // seed baseline
		{"bcast", "pipelined"},
		{"bcast", "auto"},
	}
}

// RunColl measures one collective configuration across sizes on a
// fresh world of the given rank count. X is the per-rank payload
// (sendbuf bytes; the bcast buffer length), Us the per-iteration
// latency observed at rank 0.
func RunColl(spec CollSpec, proto Protocol, ranks int, sizes []int) (Series, error) {
	worlds, err := mp.NewLocalWorlds(proto.Channel, ranks, proto.EagerMax)
	if err != nil {
		return Series{}, err
	}
	type res struct {
		points []Point
		err    error
	}
	results := make(chan res, ranks)
	for _, w := range worlds {
		go func(w *mp.World) {
			defer w.Close()
			points, err := collRankLoop(spec, w, proto, sizes)
			results <- res{points, err}
		}(w)
	}
	series := Series{Impl: spec.label()}
	var firstErr error
	for i := 0; i < ranks; i++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		if r.points != nil {
			series.Points = r.points
		}
	}
	return series, firstErr
}

func collRankLoop(spec CollSpec, w *mp.World, proto Protocol, sizes []int) ([]Point, error) {
	c := w.Comm
	if spec.Algo != "auto" {
		if err := c.SetCollAlgo(spec.Op + "=" + spec.Algo); err != nil {
			return nil, err
		}
	}
	n := c.Size()
	me := c.Rank()
	var points []Point
	for _, size := range sizes {
		var step func() error
		switch spec.Op {
		case "allreduce":
			send := make([]byte, size)
			recv := make([]byte, size)
			step = func() error { return c.Allreduce(send, recv, mp.TypeFloat64, mp.OpSum) }
		case "allgather":
			send := make([]byte, size)
			recv := make([]byte, size*n)
			step = func() error { return c.Allgather(send, recv) }
		case "bcast":
			buf := make([]byte, size)
			step = func() error { return c.Bcast(buf, 0) }
		default:
			return nil, fmt.Errorf("bench: unknown collective %q", spec.Op)
		}
		reps := make([]float64, 0, proto.Repeats)
		for rep := 0; rep < proto.Repeats; rep++ {
			// Align the ranks so the timer doesn't absorb arrival skew
			// from the previous configuration.
			if err := c.Barrier(); err != nil {
				return nil, err
			}
			iters := proto.Warmup + proto.Timed
			var t0 time.Time
			for i := 0; i < iters; i++ {
				if i == proto.Warmup {
					t0 = time.Now()
				}
				if err := step(); err != nil {
					return nil, fmt.Errorf("%s size %d: %w", spec.label(), size, err)
				}
			}
			reps = append(reps, float64(time.Since(t0).Nanoseconds())/1e3/float64(proto.Timed))
		}
		if me == 0 {
			points = append(points, Point{X: size, Us: median(reps)})
		}
	}
	if me == 0 {
		return points, nil
	}
	return nil, nil
}

// RunCollN measures one collective configuration at one size for
// exactly n timed iterations (testing.B integration).
func RunCollN(spec CollSpec, ranks, size, n int) (float64, error) {
	proto := Protocol{Warmup: 3, Timed: n, Repeats: 1, Channel: mp.ChannelShm}
	s, err := RunColl(spec, proto, ranks, []int{size})
	if err != nil {
		return 0, err
	}
	if len(s.Points) == 0 {
		return 0, fmt.Errorf("no points for %s", spec.label())
	}
	return s.Points[0].Us, nil
}

// CollSweep runs every spec and returns the series in spec order.
func CollSweep(proto Protocol, ranks int, sizes []int) ([]Series, error) {
	var out []Series
	for _, spec := range CollSweepSpecs() {
		s, err := RunColl(spec, proto, ranks, sizes)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// CollReport is the JSON document emitted by scripts/bench_coll.sh
// (committed as BENCH_coll.json): enough context to interpret the
// numbers plus a machine-checkable speedup summary.
type CollReport struct {
	Ranks    int              `json:"ranks"`
	Channel  string           `json:"channel"`
	Protocol map[string]int   `json:"protocol"`
	Series   []CollJSONSeries `json:"series"`
	// Speedups compares each operation's best new algorithm against
	// the seed baseline at the largest swept size.
	Speedups map[string]float64 `json:"speedup_vs_seed_at_max_size"`
}

// CollJSONSeries is one configuration's line.
type CollJSONSeries struct {
	Op     string          `json:"op"`
	Algo   string          `json:"algo"`
	Points []CollJSONPoint `json:"points"`
}

// CollJSONPoint is one measurement.
type CollJSONPoint struct {
	Bytes int     `json:"bytes"`
	Us    float64 `json:"us_per_iter"`
}

// collBaselines names each operation's seed-shaped algorithm.
var collBaselines = map[string]string{
	"allreduce": "reducebcast",
	"allgather": "gatherbcast",
	"bcast":     "binomial",
}

// BuildCollReport assembles the JSON document from swept series.
func BuildCollReport(proto Protocol, ranks int, series []Series) CollReport {
	rep := CollReport{
		Ranks:   ranks,
		Channel: map[mp.ChannelKind]string{mp.ChannelShm: "shm", mp.ChannelSock: "sock"}[proto.Channel],
		Protocol: map[string]int{
			"warmup": proto.Warmup, "timed": proto.Timed, "repeats": proto.Repeats,
		},
		Speedups: map[string]float64{},
	}
	lastUs := map[string]float64{} // label -> Us at max size
	for _, s := range series {
		op, algo := s.Impl, "" // label is "op/algo"
		for i := 0; i < len(s.Impl); i++ {
			if s.Impl[i] == '/' {
				op, algo = s.Impl[:i], s.Impl[i+1:]
				break
			}
		}
		js := CollJSONSeries{Op: op, Algo: algo}
		for _, p := range s.Points {
			js.Points = append(js.Points, CollJSONPoint{Bytes: p.X, Us: p.Us})
		}
		rep.Series = append(rep.Series, js)
		if len(s.Points) > 0 {
			lastUs[s.Impl] = s.Points[len(s.Points)-1].Us
		}
	}
	for op, base := range collBaselines {
		baseUs, ok := lastUs[op+"/"+base]
		if !ok || baseUs <= 0 {
			continue
		}
		best := 0.0
		for label, us := range lastUs {
			if us <= 0 || label == op+"/"+base || len(label) < len(op)+1 || label[:len(op)+1] != op+"/" {
				continue
			}
			if sp := baseUs / us; sp > best {
				best = sp
			}
		}
		if best > 0 {
			rep.Speedups[op] = best
		}
	}
	return rep
}

// MarshalCollReport renders the report as indented JSON.
func MarshalCollReport(rep CollReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
