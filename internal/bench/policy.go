package bench

import (
	"fmt"
	"strings"

	"motor/internal/core"
	"motor/internal/mp"
	"motor/internal/vm"
)

// PolicyBehaviour runs an allocation-heavy exchange workload and
// reports the §7.4 decision counters for each pinning policy — the
// behavioural (rather than timing) half of ablation A1: how often the
// paper's policy avoids pins that the wrapper discipline would take,
// and how the conditional pin requests interact with collections.
type PolicyBehaviour struct {
	Policy          string
	Ops             uint64
	PinSkippedElder uint64
	PinAvoidedFast  uint64
	PinDeferred     uint64
	PinEager        uint64
	CondPins        uint64
	Scavenges       uint64
	CondHeld        uint64
	CondDropped     uint64
	BlocksDonated   uint64
}

// RunPolicyBehaviour measures both policies on the same workload:
// iters rounds of (allocate fresh young buffer, Irecv into it, force
// churn, Wait) against a partner that answers with blocking sends —
// the schedule that exercises every §7.4 rule.
func RunPolicyBehaviour(iters, size int) ([]PolicyBehaviour, error) {
	var out []PolicyBehaviour
	for _, pol := range []struct {
		name   string
		policy core.PinPolicy
	}{{"Motor", core.PolicyMotor}, {"always-pin", core.PolicyAlwaysPin}} {
		worlds, err := mp.NewLocalWorlds(mp.ChannelShm, 2, 0)
		if err != nil {
			return nil, err
		}
		type res struct {
			pb  PolicyBehaviour
			err error
		}
		results := make(chan res, 2)
		for _, w := range worlds {
			go func(w *mp.World) {
				defer w.Close()
				v := vm.New(vm.Config{
					Name: fmt.Sprintf("pol%d", w.Rank()),
					Heap: vm.HeapConfig{YoungSize: 32 << 10, InitialElder: 512 << 10, ArenaMax: 256 << 20},
				})
				e := core.Attach(v, w, core.WithPolicy(pol.policy))
				th := v.StartThread("bench")
				defer th.End()
				err := policyWorkload(v, e, th, w.Rank(), iters, size)
				es := e.Stats.Snapshot()
				gs := v.Heap.Stats.Snapshot()
				pb := PolicyBehaviour{
					Policy:          pol.name,
					Ops:             es.Ops,
					PinSkippedElder: es.PinSkippedElder,
					PinAvoidedFast:  es.PinAvoidedFast,
					PinDeferred:     es.PinDeferred,
					PinEager:        es.PinEager,
					CondPins:        es.CondPins,
					Scavenges:       gs.Scavenges,
					CondHeld:        gs.CondPinsHeld,
					CondDropped:     gs.CondPinsDropped,
					BlocksDonated:   gs.BlocksDonated,
				}
				results <- res{pb, err}
			}(w)
		}
		var merged PolicyBehaviour
		merged.Policy = pol.name
		for i := 0; i < 2; i++ {
			r := <-results
			if r.err != nil {
				return nil, r.err
			}
			merged.Ops += r.pb.Ops
			merged.PinSkippedElder += r.pb.PinSkippedElder
			merged.PinAvoidedFast += r.pb.PinAvoidedFast
			merged.PinDeferred += r.pb.PinDeferred
			merged.PinEager += r.pb.PinEager
			merged.CondPins += r.pb.CondPins
			merged.Scavenges += r.pb.Scavenges
			merged.CondHeld += r.pb.CondHeld
			merged.CondDropped += r.pb.CondDropped
			merged.BlocksDonated += r.pb.BlocksDonated
		}
		out = append(out, merged)
	}
	return out, nil
}

func policyWorkload(v *vm.VM, e *core.Engine, th *vm.Thread, rank, iters, size int) error {
	h := v.Heap
	u8 := v.ArrayType(vm.KindUint8, nil, 1)
	peer := 1 - rank
	for i := 0; i < iters; i++ {
		buf, err := h.AllocArray(u8, size)
		if err != nil {
			return err
		}
		if rank == 0 {
			// Non-blocking receive into a fresh (young) buffer, churn
			// while it is outstanding, then wait — the conditional-pin
			// schedule.
			id, err := e.Irecv(th, buf, peer, i)
			if err != nil {
				return err
			}
			for k := 0; k < 8; k++ {
				if _, err := h.AllocArray(u8, 2048); err != nil {
					return err
				}
			}
			if _, err := e.Wait(th, id); err != nil {
				return err
			}
			// Reply with a blocking send (often fast-completing).
			if err := e.Send(th, buf, peer, i); err != nil {
				return err
			}
		} else {
			if err := e.Send(th, buf, peer, i); err != nil {
				return err
			}
			if _, err := e.Recv(th, buf, peer, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// FormatPolicyBehaviour renders the counters as an aligned table.
func FormatPolicyBehaviour(rows []PolicyBehaviour) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %10s %10s %10s %8s %9s %10s %9s %9s %8s\n",
		"policy", "ops", "skipElder", "avoidFast", "deferred", "eager",
		"condReq", "scavenges", "condHeld", "condDrop", "donated")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %8d %10d %10d %10d %8d %9d %10d %9d %9d %8d\n",
			r.Policy, r.Ops, r.PinSkippedElder, r.PinAvoidedFast, r.PinDeferred,
			r.PinEager, r.CondPins, r.Scavenges, r.CondHeld, r.CondDropped, r.BlocksDonated)
	}
	return sb.String()
}
