package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"motor/internal/core"
	"motor/internal/mp"
	"motor/internal/vm"
)

// The async-progress benchmark measures compute/communication
// overlap: each iteration posts a symmetric nonblocking rendezvous
// exchange, runs a duty-cycle compute phase, and only then waits.
// The compute phase models the FCall workloads the progress engine
// exists for — each slice burns a little CPU while holding the
// execution token, then parks the thread (native I/O, accelerator
// offload, memory stall) with the token released. With inline
// polling, the protocol only advances once the guest reaches Wait,
// so wall time is compute + comm; with the background engine, the
// protocol advances inside the parked gaps and wall time approaches
// max(compute, comm). The overlap ratio is inline/async wall time.

// AsyncConfig sizes one overlap run. The compute phase is
// deadline-driven (busy-spin then park, repeated until ComputeUs of
// wall time has elapsed) rather than slice-counted: time.Sleep
// granularity varies wildly between hosts and even between runs, so
// a fixed sleep count would give a different compute duration in
// each mode. A wall deadline makes the compute phase identical
// across modes by construction; ComputeUs == 0 calibrates it to
// 1.5x the measured comm-only time.
type AsyncConfig struct {
	MsgBytes  int // per-exchange payload (must exceed eager max: rendezvous)
	Msgs      int // concurrent exchanges per iteration
	ComputeUs int // compute-phase wall budget per iteration (0 = calibrate)
	BusyUs    int // busy-spin per slice, token held
	ParkUs    int // parked (token released) sleep per slice
	Warmup    int
	Timed     int
	Repeats   int
}

// AsyncGrid is the committed-artifact configuration.
func AsyncGrid() AsyncConfig {
	return AsyncConfig{MsgBytes: 1 << 20, Msgs: 16, BusyUs: 25, ParkUs: 200, Warmup: 3, Timed: 16, Repeats: 3}
}

// AsyncQuickGrid is the smoke-run configuration.
func AsyncQuickGrid() AsyncConfig {
	return AsyncConfig{MsgBytes: 256 << 10, Msgs: 8, BusyUs: 25, ParkUs: 200, Warmup: 2, Timed: 6, Repeats: 2}
}

// AsyncReport is the machine-readable result (BENCH_async.json).
type AsyncReport struct {
	Ranks     int            `json:"ranks"`
	Channel   string         `json:"channel"`
	MsgBytes  int            `json:"msg_bytes"`
	Msgs      int            `json:"msgs_per_iter"`
	Protocol  map[string]int `json:"protocol"`
	CommUs    float64        `json:"comm_only_us"`
	ComputeUs float64        `json:"compute_us"`
	InlineUs  float64        `json:"inline_us"`
	AsyncUs   float64        `json:"async_us"`
	Overlap   float64        `json:"overlap_ratio"`
	Passes    uint64         `json:"progress_passes"`
}

// busySpin burns roughly d of CPU while holding the execution token —
// the managed-compute fraction of a slice.
func busySpin(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1
	for time.Now().Before(deadline) {
		for i := 0; i < 1024; i++ {
			x = x*31 + i
		}
	}
	_ = x
}

// runAsyncMode times the exchange+compute loop on a fresh 2-rank shm
// world. With cfg.ComputeUs == 0 the compute phase is skipped
// entirely (the comm-only calibration run). Returns mean wall
// microseconds per iteration and the total progress passes across
// ranks.
func runAsyncMode(cfg AsyncConfig, async bool) (float64, uint64, error) {
	worlds, err := mp.NewLocalWorlds(mp.ChannelShm, 2, 0)
	if err != nil {
		return 0, 0, err
	}
	type res struct {
		us     float64
		passes uint64
		err    error
	}
	resc := make(chan res, 2)
	for _, w := range worlds {
		go func(w *mp.World) {
			defer w.Close()
			v := benchVM(fmt.Sprintf("async%d", w.Rank()), vm.PinHandleTable)
			e := core.Attach(v, w, core.WithAsyncProgress(async))
			defer e.Close()
			th := v.StartThread("bench")
			defer th.End()

			u8 := v.ArrayType(vm.KindUint8, nil, 1)
			msgs := cfg.Msgs
			if msgs < 1 {
				msgs = 1
			}
			sendRefs := make([]vm.Ref, msgs)
			recvRefs := make([]vm.Ref, msgs)
			// Root the slots before allocating: a collection triggered
			// by a later allocation must forward the earlier refs.
			var slots []*vm.Ref
			for m := 0; m < msgs; m++ {
				slots = append(slots, &sendRefs[m], &recvRefs[m])
			}
			defer th.PushFrame(slots...)()
			for m := 0; m < msgs; m++ {
				if sendRefs[m], err = v.Heap.AllocArray(u8, cfg.MsgBytes); err == nil {
					recvRefs[m], err = v.Heap.AllocArray(u8, cfg.MsgBytes)
				}
				if err != nil {
					resc <- res{err: err}
					return
				}
			}
			peer := 1 - w.Rank()
			park := time.Duration(cfg.ParkUs) * time.Microsecond
			busy := time.Duration(cfg.BusyUs) * time.Microsecond
			compute := time.Duration(cfg.ComputeUs) * time.Microsecond

			sids := make([]int32, msgs)
			rids := make([]int32, msgs)
			iter := func() error {
				for m := 0; m < msgs; m++ {
					rid, err := e.Irecv(th, recvRefs[m], peer, m)
					if err != nil {
						return err
					}
					sid, err := e.Isend(th, sendRefs[m], peer, m)
					if err != nil {
						return err
					}
					sids[m], rids[m] = sid, rid
				}
				for phase := time.Now(); time.Since(phase) < compute; {
					busySpin(busy)
					th.Park(func() { time.Sleep(park) })
				}
				for m := 0; m < msgs; m++ {
					if _, err := e.Wait(th, sids[m]); err != nil {
						return err
					}
					if _, err := e.Wait(th, rids[m]); err != nil {
						return err
					}
				}
				return nil
			}

			if err := e.Barrier(th); err != nil {
				resc <- res{err: err}
				return
			}
			for i := 0; i < cfg.Warmup; i++ {
				if err := iter(); err != nil {
					resc <- res{err: err}
					return
				}
			}
			best := 0.0
			for r := 0; r < cfg.Repeats; r++ {
				if err := e.Barrier(th); err != nil {
					resc <- res{err: err}
					return
				}
				start := time.Now()
				for i := 0; i < cfg.Timed; i++ {
					if err := iter(); err != nil {
						resc <- res{err: err}
						return
					}
				}
				us := float64(time.Since(start).Microseconds()) / float64(cfg.Timed)
				if r == 0 || us < best {
					best = us
				}
			}
			resc <- res{us: best, passes: e.ProgressStats().Passes}
		}(w)
	}
	var worst float64
	var passes uint64
	for i := 0; i < 2; i++ {
		r := <-resc
		if r.err != nil {
			return 0, 0, r.err
		}
		if r.us > worst {
			worst = r.us
		}
		passes += r.passes
	}
	return worst, passes, nil
}

// RunAsyncOverlap calibrates, then measures inline vs background-
// engine wall time. Calibration measures the comm-only iteration
// time and budgets the compute phase at 1.5x that, so communication
// is ~40% of an ideally-overlapped iteration — big enough that
// hiding it moves the needle, small enough that the parked gaps can
// absorb it.
func RunAsyncOverlap(cfg AsyncConfig) (AsyncReport, error) {
	commOnly := cfg
	commOnly.ComputeUs = 0
	commUs, _, err := runAsyncMode(commOnly, false)
	if err != nil {
		return AsyncReport{}, fmt.Errorf("comm calibration: %w", err)
	}
	if cfg.ComputeUs == 0 {
		cfg.ComputeUs = int(1.5 * commUs)
	}
	computeUs := float64(cfg.ComputeUs)

	inlineUs, _, err := runAsyncMode(cfg, false)
	if err != nil {
		return AsyncReport{}, fmt.Errorf("inline run: %w", err)
	}
	asyncUs, passes, err := runAsyncMode(cfg, true)
	if err != nil {
		return AsyncReport{}, fmt.Errorf("async run: %w", err)
	}
	rep := AsyncReport{
		Ranks:    2,
		Channel:  "shm",
		MsgBytes: cfg.MsgBytes,
		Msgs:     cfg.Msgs,
		Protocol: map[string]int{
			"warmup": cfg.Warmup, "timed": cfg.Timed, "repeats": cfg.Repeats,
			"busy_us": cfg.BusyUs, "park_us": cfg.ParkUs,
		},
		CommUs:    commUs,
		ComputeUs: computeUs,
		InlineUs:  inlineUs,
		AsyncUs:   asyncUs,
		Passes:    passes,
	}
	if asyncUs > 0 {
		rep.Overlap = inlineUs / asyncUs
	}
	return rep, nil
}

// MarshalAsyncReport renders the report as indented JSON.
func MarshalAsyncReport(rep AsyncReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// FormatAsyncTable renders the result as text.
func FormatAsyncTable(rep AsyncReport) string {
	out := "async progress overlap: inline polling vs background engine (us per iteration)\n"
	out += fmt.Sprintf("%d x %d bytes per iter (comm-only %.0f us, compute budget %.0f us)\n",
		rep.Msgs, rep.MsgBytes, rep.CommUs, rep.ComputeUs)
	out += fmt.Sprintf("%10s %10s %10s %8s\n", "inline", "async", "passes", "overlap")
	out += fmt.Sprintf("%10.1f %10.1f %10d %7.2fx\n", rep.InlineUs, rep.AsyncUs, rep.Passes, rep.Overlap)
	return out
}
