// Package bench is the harness that regenerates every figure of the
// paper's evaluation (§8) plus the ablations called out in DESIGN.md.
// It is shared by cmd/benchfig (human-readable tables) and the
// testing.B benchmarks in the repository root.
//
// Protocol, matching the paper: two ranks run an MPI ping-pong; one
// iteration is a full round trip; each configuration runs warm-up
// iterations, then timed iterations, repeated several times and
// averaged; results are microseconds per iteration.
package bench

import (
	"fmt"
	"sort"
	"time"

	"motor/internal/mp"
)

// Point is one measurement of a series.
type Point struct {
	X     int     // buffer bytes (Fig 9) or total objects (Fig 10)
	Us    float64 // microseconds per iteration
	Bytes int     // serialized bytes per direction, when known
	Err   string  // non-empty when the implementation failed here
}

// Series is one implementation's line on a figure.
type Series struct {
	Impl   string
	Points []Point
}

// Protocol controls iteration counts. The paper used 200 iterations
// (last 100 timed) and 3 repeats; Quick() shrinks that for CI.
type Protocol struct {
	Warmup  int
	Timed   int
	Repeats int
	Channel mp.ChannelKind
	// EagerMax overrides the transport's eager/rendezvous threshold
	// (0 = device default, 64 KiB).
	EagerMax int
}

// PaperProtocol mirrors §8 (200 iterations, last 100 timed, 3
// repeats averaged); the timed count and repeats are raised and
// combined by median because a single-CPU host schedules the two
// ranks cooperatively and individual repeats jitter far more than
// the paper's dedicated testbed did.
func PaperProtocol() Protocol {
	return Protocol{Warmup: 100, Timed: 200, Repeats: 9, Channel: mp.ChannelShm}
}

// Quick is a fast protocol for tests.
func Quick() Protocol {
	return Protocol{Warmup: 5, Timed: 20, Repeats: 1, Channel: mp.ChannelShm}
}

// Fig9Sizes are the paper's buffer sizes: 4 B … 256 KiB, powers of 2.
func Fig9Sizes() []int {
	var out []int
	for s := 4; s <= 256<<10; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Fig10Counts are the paper's total object counts: 2 … 8192.
func Fig10Counts() []int {
	var out []int
	for n := 2; n <= 8192; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Fig10TotalBytes is the paper's fixed payload: "the total data
// buffer was 4096 bytes, evenly distributed over the entire linked
// list".
const Fig10TotalBytes = 4096

// median combines repeat measurements robustly (scheduling jitter on
// shared single-CPU hosts skews means).
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// pingRank is one rank's implementation-specific state for the
// regular-operations ping-pong (Figure 9).
type pingRank interface {
	SetSize(n int) error
	Send(dest, tag int) error
	Recv(source, tag int) error
	Close()
}

// PingImpl names an implementation and constructs per-rank state.
// The constructor runs on the rank's own goroutine.
type PingImpl struct {
	Name string
	New  func(w *mp.World) (pingRank, error)
}

// RunPing measures one implementation across sizes.
func RunPing(impl PingImpl, proto Protocol, sizes []int) (Series, error) {
	worlds, err := mp.NewLocalWorlds(proto.Channel, 2, proto.EagerMax)
	if err != nil {
		return Series{}, err
	}
	type res struct {
		points []Point
		err    error
	}
	results := make(chan res, 2)
	for _, w := range worlds {
		go func(w *mp.World) {
			defer w.Close()
			points, err := pingRankLoop(impl, w, proto, sizes)
			results <- res{points, err}
		}(w)
	}
	var series Series
	series.Impl = impl.Name
	var firstErr error
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		if r.points != nil {
			series.Points = r.points
		}
	}
	return series, firstErr
}

func pingRankLoop(impl PingImpl, w *mp.World, proto Protocol, sizes []int) ([]Point, error) {
	pr, err := impl.New(w)
	if err != nil {
		return nil, fmt.Errorf("%s rank %d: %w", impl.Name, w.Rank(), err)
	}
	defer pr.Close()
	me := w.Rank()
	peer := 1 - me
	var points []Point
	for _, size := range sizes {
		if err := pr.SetSize(size); err != nil {
			return nil, fmt.Errorf("%s size %d: %w", impl.Name, size, err)
		}
		reps := make([]float64, 0, proto.Repeats)
		for rep := 0; rep < proto.Repeats; rep++ {
			iters := proto.Warmup + proto.Timed
			var t0 time.Time
			for i := 0; i < iters; i++ {
				if i == proto.Warmup {
					t0 = time.Now()
				}
				if me == 0 {
					if err := pr.Send(peer, 0); err != nil {
						return nil, fmt.Errorf("%s size %d send: %w", impl.Name, size, err)
					}
					if err := pr.Recv(peer, 0); err != nil {
						return nil, fmt.Errorf("%s size %d recv: %w", impl.Name, size, err)
					}
				} else {
					if err := pr.Recv(peer, 0); err != nil {
						return nil, fmt.Errorf("%s size %d recv: %w", impl.Name, size, err)
					}
					if err := pr.Send(peer, 0); err != nil {
						return nil, fmt.Errorf("%s size %d send: %w", impl.Name, size, err)
					}
				}
			}
			reps = append(reps, float64(time.Since(t0).Nanoseconds())/1e3/float64(proto.Timed))
		}
		if me == 0 {
			points = append(points, Point{X: size, Us: median(reps)})
		}
	}
	if me == 0 {
		return points, nil
	}
	return nil, nil
}

// objRank is one rank's state for the object-transport ping-pong
// (Figure 10): Exchange performs this rank's half of one round trip,
// paying serialization and deserialization costs (the paper
// intentionally includes them).
type objRank interface {
	// Build constructs the linked list of `elements` elements whose
	// payload arrays total totalBytes.
	Build(elements, totalBytes int) error
	// Probe serializes the structure locally and discards the result,
	// reporting whether the mechanism can handle it at all (mpiJava's
	// recursive serializer cannot beyond ~1024 objects).
	Probe() error
	// Initiate serializes and sends the list, then receives and
	// deserializes the echo.
	Initiate(peer int) error
	// Echo receives + deserializes, then re-serializes the received
	// structure and sends it back.
	Echo(peer int) error
	Close()
}

// ObjImpl names an object-transport implementation.
type ObjImpl struct {
	Name string
	New  func(w *mp.World) (objRank, error)
}

// RunObj measures one object-transport implementation across total
// object counts. An implementation failure at some count records an
// errored point and ends the series (as mpiJava's stack overflow ends
// its Figure 10 line).
func RunObj(impl ObjImpl, proto Protocol, counts []int) (Series, error) {
	worlds, err := mp.NewLocalWorlds(proto.Channel, 2, proto.EagerMax)
	if err != nil {
		return Series{}, err
	}
	type res struct {
		points []Point
		err    error
	}
	results := make(chan res, 2)
	for _, w := range worlds {
		go func(w *mp.World) {
			defer w.Close()
			points, err := objRankLoop(impl, w, proto, counts)
			results <- res{points, err}
		}(w)
	}
	var series Series
	series.Impl = impl.Name
	var firstErr error
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		if r.points != nil {
			series.Points = r.points
		}
	}
	return series, firstErr
}

// objControl coordinates failure between the two ranks: before each
// count, rank 0 builds and reports whether the structure is
// serializable at all; both ranks then skip in lockstep.
const objCtrlTag = 99

func objRankLoop(impl ObjImpl, w *mp.World, proto Protocol, counts []int) ([]Point, error) {
	or, err := impl.New(w)
	if err != nil {
		return nil, fmt.Errorf("%s rank %d: %w", impl.Name, w.Rank(), err)
	}
	defer or.Close()
	me := w.Rank()
	peer := 1 - me
	var points []Point
	ctrl := make([]byte, 1)
	for _, totalObjects := range counts {
		elements := totalObjects / 2
		if elements < 1 {
			elements = 1
		}
		if err := or.Build(elements, Fig10TotalBytes); err != nil {
			return nil, fmt.Errorf("%s build %d: %w", impl.Name, elements, err)
		}
		// Probe locally (no transport), then agree via a control
		// message whether this count runs. A failed probe ends the
		// series — the paper's mpiJava line simply stops.
		if me == 0 {
			if probeErr := or.Probe(); probeErr != nil {
				ctrl[0] = 1
				if err := w.Comm.Send(ctrl, peer, objCtrlTag); err != nil {
					return nil, err
				}
				points = append(points, Point{X: totalObjects, Err: probeErr.Error()})
				return points, nil
			}
			ctrl[0] = 0
			if err := w.Comm.Send(ctrl, peer, objCtrlTag); err != nil {
				return nil, err
			}
		} else {
			if _, err := w.Comm.Recv(ctrl, peer, objCtrlTag); err != nil {
				return nil, err
			}
			if ctrl[0] == 1 {
				return nil, nil
			}
		}
		reps := make([]float64, 0, proto.Repeats)
		for rep := 0; rep < proto.Repeats; rep++ {
			iters := proto.Warmup + proto.Timed
			var t0 time.Time
			for i := 0; i < iters; i++ {
				if i == proto.Warmup {
					t0 = time.Now()
				}
				if me == 0 {
					if err := or.Initiate(peer); err != nil {
						return nil, fmt.Errorf("%s objects %d: %w", impl.Name, totalObjects, err)
					}
				} else {
					if err := or.Echo(peer); err != nil {
						return nil, fmt.Errorf("%s objects %d: %w", impl.Name, totalObjects, err)
					}
				}
			}
			reps = append(reps, float64(time.Since(t0).Nanoseconds())/1e3/float64(proto.Timed))
		}
		if me == 0 {
			points = append(points, Point{X: totalObjects, Us: median(reps)})
		}
	}
	if me == 0 {
		return points, nil
	}
	return nil, nil
}
