package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"motor/internal/core"
	"motor/internal/mp"
	"motor/internal/serial"
	"motor/internal/vm"
)

// Object-transport streaming sweep: the v1 whole-buffer protocol
// (8-byte size prefix, one contiguous representation, linear visited
// list — the shape of the transport before chunked streams) against
// the engine's chunked v2 stream with the type-table cache, across an
// object-count x payload-size grid. Shared by cmd/benchfig -oo and
// scripts/bench_oo.sh; the committed BENCH_oo.json is the acceptance
// artifact for the streaming transport.

// OOCell is one grid configuration: a linked list of Objects cells
// whose payload arrays total TotalBytes.
type OOCell struct {
	Objects    int
	TotalBytes int
}

// OOGrid is the sweep: small/medium/large structures crossed with
// payloads up to several MiB, so the large column exercises
// representations well past 1 MiB (the streaming transport's target
// regime) while the small corner keeps the latency overhead honest.
func OOGrid() []OOCell {
	var out []OOCell
	for _, objs := range []int{16, 256, 2048} {
		for _, bytes := range []int{64 << 10, 1 << 20, 4 << 20} {
			out = append(out, OOCell{Objects: objs, TotalBytes: bytes})
		}
	}
	return out
}

// OOQuickGrid is a reduced grid for smoke runs.
func OOQuickGrid() []OOCell {
	return []OOCell{{16, 64 << 10}, {256, 1 << 20}}
}

// OOProtocol sizes iteration counts for multi-MiB round trips (the
// paper protocol's hundreds of iterations would take minutes per
// cell at 4 MiB).
func OOProtocol() Protocol {
	return Protocol{Warmup: 2, Timed: 10, Repeats: 5, Channel: mp.ChannelShm}
}

// ooRank is one rank's implementation of the grid ping-pong.
type ooRank interface {
	Build(cell OOCell) error
	Initiate(peer, tag int) error
	Echo(peer, tag int) error
	Close()
}

// --- baseline: the pre-streaming protocol --------------------------------------

// v1Rank replicates the transport's original object path at the
// bench level: serialize the whole tree into one buffer with the
// linear visited list (the engine's former default), send an 8-byte
// size prefix, send the representation as a single message, and
// deserialize from the contiguous buffer on the far side.
type v1Rank struct {
	v       *vm.VM
	c       *mp.Comm
	th      *vm.Thread
	mt      *vm.MethodTable
	head    vm.Handle
	scratch []byte // persistent staging buffer (generous to the baseline)
}

func newV1Rank(w *mp.World) (*v1Rank, error) {
	v := benchVM(fmt.Sprintf("oov1_%d", w.Rank()), vm.PinHandleTable)
	return &v1Rank{v: v, c: w.Comm, th: v.StartThread("bench"), mt: cellClass(v), head: vm.InvalidHandle}, nil
}

func (r *v1Rank) Build(cell OOCell) error {
	if r.head != vm.InvalidHandle {
		r.v.Handles.Free(r.head)
	}
	head, err := buildCells(r.v, r.mt, cell.Objects, cell.TotalBytes)
	if err != nil {
		return err
	}
	r.head = r.v.Handles.Alloc(head)
	return nil
}

func (r *v1Rank) sendTree(root vm.Ref, peer, tag int) error {
	data, err := serial.Serialize(r.v.Heap, root, serial.Options{Visited: serial.VisitedLinear}, r.scratch)
	if err != nil {
		return err
	}
	r.scratch = data[:0]
	var szb [8]byte
	binary.LittleEndian.PutUint64(szb[:], uint64(len(data)))
	if err := r.c.Send(szb[:], peer, tag); err != nil {
		return err
	}
	return r.c.Send(data, peer, tag)
}

func (r *v1Rank) recvTree(peer, tag int) (vm.Ref, error) {
	var szb [8]byte
	if _, err := r.c.Recv(szb[:], peer, tag); err != nil {
		return vm.NullRef, err
	}
	size := int(binary.LittleEndian.Uint64(szb[:]))
	buf := make([]byte, size)
	if _, err := r.c.Recv(buf, peer, tag); err != nil {
		return vm.NullRef, err
	}
	return serial.Deserialize(r.v, buf)
}

func (r *v1Rank) Initiate(peer, tag int) error {
	if err := r.sendTree(r.v.Handles.Get(r.head), peer, tag); err != nil {
		return err
	}
	_, err := r.recvTree(peer, tag)
	return err
}

func (r *v1Rank) Echo(peer, tag int) error {
	got, err := r.recvTree(peer, tag)
	if err != nil {
		return err
	}
	pop := r.th.PushFrame(&got)
	defer pop()
	return r.sendTree(got, peer, tag)
}

func (r *v1Rank) Close() { r.th.End() }

// --- streaming: the engine's chunked v2 transport ------------------------------

// streamRank uses the engine's OSend/ORecv: chunked v2 streams
// pipelined with the wire and the per-peer type-table cache.
type streamRank struct {
	v    *vm.VM
	e    *core.Engine
	th   *vm.Thread
	mt   *vm.MethodTable
	head vm.Handle
}

func newStreamRank(w *mp.World) (*streamRank, error) {
	v := benchVM(fmt.Sprintf("oov2_%d", w.Rank()), vm.PinHandleTable)
	e := core.Attach(v, w)
	return &streamRank{v: v, e: e, th: v.StartThread("bench"), mt: cellClass(v), head: vm.InvalidHandle}, nil
}

func (r *streamRank) Build(cell OOCell) error {
	if r.head != vm.InvalidHandle {
		r.v.Handles.Free(r.head)
	}
	head, err := buildCells(r.v, r.mt, cell.Objects, cell.TotalBytes)
	if err != nil {
		return err
	}
	r.head = r.v.Handles.Alloc(head)
	return nil
}

func (r *streamRank) Initiate(peer, tag int) error {
	if err := r.e.OSend(r.th, r.v.Handles.Get(r.head), peer, tag); err != nil {
		return err
	}
	_, _, err := r.e.ORecv(r.th, peer, tag)
	return err
}

func (r *streamRank) Echo(peer, tag int) error {
	got, _, err := r.e.ORecv(r.th, peer, tag)
	if err != nil {
		return err
	}
	pop := r.th.PushFrame(&got)
	defer pop()
	return r.e.OSend(r.th, got, peer, tag)
}

func (r *streamRank) Close() { r.th.End() }

// --- runner --------------------------------------------------------------------

// OOPoint is one measured cell.
type OOPoint struct {
	Objects int     `json:"objects"`
	Bytes   int     `json:"payload_bytes"`
	Us      float64 `json:"us_per_iter"`
}

// ooSweepResult carries rank 0's measurements plus (streaming only)
// the type-table cache evidence.
type ooSweepResult struct {
	points []OOPoint
	tt     serial.TTCacheStats
	// warmTableBytes is the table traffic of one extra exchange run
	// after the sweep with the cache warm — the acceptance criterion
	// says it must be zero.
	warmTableBytes uint64
	warmHits       uint64
}

// runOOImpl sweeps one implementation over the grid on a fresh
// 2-rank world.
func runOOImpl(mk func(w *mp.World) (ooRank, error), proto Protocol, cells []OOCell, stats bool) (ooSweepResult, error) {
	worlds, err := mp.NewLocalWorlds(proto.Channel, 2, proto.EagerMax)
	if err != nil {
		return ooSweepResult{}, err
	}
	type res struct {
		r   ooSweepResult
		err error
	}
	results := make(chan res, 2)
	for _, w := range worlds {
		go func(w *mp.World) {
			defer w.Close()
			r, err := ooImplRankLoop(mk, w, proto, cells, stats)
			results <- res{r, err}
		}(w)
	}
	var out ooSweepResult
	var firstErr error
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		if r.r.points != nil {
			out = r.r
		}
	}
	return out, firstErr
}

func ooImplRankLoop(mk func(w *mp.World) (ooRank, error), w *mp.World, proto Protocol, cells []OOCell, stats bool) (ooSweepResult, error) {
	or, err := mk(w)
	if err != nil {
		return ooSweepResult{}, err
	}
	defer or.Close()
	me := w.Rank()
	peer := 1 - me
	var out ooSweepResult
	for _, cell := range cells {
		if err := or.Build(cell); err != nil {
			return out, fmt.Errorf("build %dx%d: %w", cell.Objects, cell.TotalBytes, err)
		}
		reps := make([]float64, 0, proto.Repeats)
		for rep := 0; rep < proto.Repeats; rep++ {
			iters := proto.Warmup + proto.Timed
			var t0 time.Time
			for i := 0; i < iters; i++ {
				if i == proto.Warmup {
					t0 = time.Now()
				}
				if me == 0 {
					err = or.Initiate(peer, 1)
				} else {
					err = or.Echo(peer, 1)
				}
				if err != nil {
					return out, fmt.Errorf("cell %dx%d: %w", cell.Objects, cell.TotalBytes, err)
				}
			}
			reps = append(reps, float64(time.Since(t0).Nanoseconds())/1e3/float64(proto.Timed))
		}
		if me == 0 {
			out.points = append(out.points, OOPoint{Objects: cell.Objects, Bytes: cell.TotalBytes, Us: median(reps)})
		}
	}
	// One extra exchange with the cache warm: the table-byte delta
	// across it is the "zero type-table bytes after the first
	// same-shape message" proof.
	var before serial.TTCacheStats
	sr, isStream := or.(*streamRank)
	if stats && isStream {
		before = sr.e.TTCache.Snapshot()
	}
	if me == 0 {
		err = or.Initiate(peer, 1)
	} else {
		err = or.Echo(peer, 1)
	}
	if err != nil {
		return out, fmt.Errorf("warm exchange: %w", err)
	}
	if stats && isStream && me == 0 {
		after := sr.e.TTCache.Snapshot()
		out.tt = after
		out.warmTableBytes = after.TableBytes - before.TableBytes
		out.warmHits = after.Hits - before.Hits
	}
	if me == 0 {
		return out, nil
	}
	return ooSweepResult{}, nil
}

// --- report --------------------------------------------------------------------

// OOCellJSON is one grid cell's comparison.
type OOCellJSON struct {
	Objects    int     `json:"objects"`
	Bytes      int     `json:"payload_bytes"`
	BaselineUs float64 `json:"v1_us_per_iter"`
	StreamUs   float64 `json:"stream_us_per_iter"`
	Speedup    float64 `json:"speedup"`
}

// OOReport is the JSON document emitted by scripts/bench_oo.sh
// (committed as BENCH_oo.json). SpeedupBig summarises the cells whose
// payload is >= 1 MiB — the streaming transport's acceptance regime —
// and TTCache carries the cache-hit evidence: WarmTableBytes is the
// type-table traffic of one post-sweep exchange (must be 0),
// WarmHits the cache hits it scored instead.
type OOReport struct {
	Ranks          int                `json:"ranks"`
	Channel        string             `json:"channel"`
	Protocol       map[string]int     `json:"protocol"`
	Cells          []OOCellJSON       `json:"cells"`
	SpeedupBig     map[string]float64 `json:"speedup_vs_v1_at_1mib_plus"`
	TTCache        map[string]uint64  `json:"ttcache"`
	WarmTableBytes uint64             `json:"warm_exchange_table_bytes"`
	WarmHits       uint64             `json:"warm_exchange_cache_hits"`
}

// RunOOSweep measures both implementations over the grid and builds
// the report.
func RunOOSweep(proto Protocol, cells []OOCell) (OOReport, error) {
	base, err := runOOImpl(func(w *mp.World) (ooRank, error) { return newV1Rank(w) }, proto, cells, false)
	if err != nil {
		return OOReport{}, fmt.Errorf("v1 baseline: %w", err)
	}
	stream, err := runOOImpl(func(w *mp.World) (ooRank, error) { return newStreamRank(w) }, proto, cells, true)
	if err != nil {
		return OOReport{}, fmt.Errorf("stream: %w", err)
	}
	rep := OOReport{
		Ranks:   2,
		Channel: map[mp.ChannelKind]string{mp.ChannelShm: "shm", mp.ChannelSock: "sock"}[proto.Channel],
		Protocol: map[string]int{
			"warmup": proto.Warmup, "timed": proto.Timed, "repeats": proto.Repeats,
		},
		SpeedupBig: map[string]float64{},
		TTCache: map[string]uint64{
			"hits":        stream.tt.Hits,
			"misses":      stream.tt.Misses,
			"nacks":       stream.tt.Nacks,
			"resets":      stream.tt.Resets,
			"table_bytes": stream.tt.TableBytes,
		},
		WarmTableBytes: stream.warmTableBytes,
		WarmHits:       stream.warmHits,
	}
	sIdx := map[[2]int]float64{}
	for _, p := range stream.points {
		sIdx[[2]int{p.Objects, p.Bytes}] = p.Us
	}
	var bigMin, bigMax, bigSum float64
	bigN := 0
	for _, p := range base.points {
		sUs, ok := sIdx[[2]int{p.Objects, p.Bytes}]
		if !ok || sUs <= 0 {
			continue
		}
		cell := OOCellJSON{Objects: p.Objects, Bytes: p.Bytes, BaselineUs: p.Us, StreamUs: sUs, Speedup: p.Us / sUs}
		rep.Cells = append(rep.Cells, cell)
		if p.Bytes >= 1<<20 {
			if bigN == 0 || cell.Speedup < bigMin {
				bigMin = cell.Speedup
			}
			if cell.Speedup > bigMax {
				bigMax = cell.Speedup
			}
			bigSum += cell.Speedup
			bigN++
		}
	}
	if bigN > 0 {
		rep.SpeedupBig["min"] = bigMin
		rep.SpeedupBig["max"] = bigMax
		rep.SpeedupBig["mean"] = bigSum / float64(bigN)
	}
	return rep, nil
}

// MarshalOOReport renders the report as indented JSON.
func MarshalOOReport(rep OOReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// FormatOOTable renders the comparison as an aligned text table.
func FormatOOTable(rep OOReport) string {
	out := fmt.Sprintf("OO transport sweep: v1 whole-buffer vs chunked stream (microseconds per round trip)\n")
	out += fmt.Sprintf("%8s %12s %14s %14s %9s\n", "objects", "bytes", "v1", "stream", "speedup")
	for _, c := range rep.Cells {
		out += fmt.Sprintf("%8d %12d %14.1f %14.1f %8.2fx\n", c.Objects, c.Bytes, c.BaselineUs, c.StreamUs, c.Speedup)
	}
	out += fmt.Sprintf("ttcache: hits=%d misses=%d table_bytes=%d; warm exchange: table_bytes=%d hits=%d\n",
		rep.TTCache["hits"], rep.TTCache["misses"], rep.TTCache["table_bytes"], rep.WarmTableBytes, rep.WarmHits)
	return out
}

// RunOON measures one implementation at one cell for exactly n timed
// iterations (testing.B integration).
func RunOON(streamImpl bool, cell OOCell, n int) (float64, error) {
	proto := Protocol{Warmup: 2, Timed: n, Repeats: 1, Channel: mp.ChannelShm}
	mk := func(w *mp.World) (ooRank, error) { return newV1Rank(w) }
	if streamImpl {
		mk = func(w *mp.World) (ooRank, error) { return newStreamRank(w) }
	}
	r, err := runOOImpl(mk, proto, []OOCell{cell}, false)
	if err != nil {
		return 0, err
	}
	if len(r.points) == 0 {
		return 0, fmt.Errorf("no points")
	}
	return r.points[0].Us, nil
}
