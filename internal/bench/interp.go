package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"motor/internal/vm"
	"motor/internal/vm/bcverify"
)

// The interpreter benchmark measures the load-time quickening pass
// (docs/QUICKEN.md): each kernel is a compute-bound masm module run
// under baseline single-switch dispatch and under quickened dispatch
// (pre-decoded wide instructions, superinstructions, baked field
// offsets, devirtualized calls), on otherwise identical fresh VMs.
// The speedup column is baseline wall time / quickened wall time.

// InterpConfig sizes one run. Each measurement calls the kernel's
// main repeatedly until MinTime of wall clock has elapsed and takes
// the mean; Repeats such measurements are taken and the best kept.
type InterpConfig struct {
	MinTime time.Duration
	Repeats int
}

// InterpGrid is the committed-artifact configuration.
func InterpGrid() InterpConfig { return InterpConfig{MinTime: 300 * time.Millisecond, Repeats: 3} }

// InterpQuickGrid is the smoke-run configuration.
func InterpQuickGrid() InterpConfig { return InterpConfig{MinTime: 40 * time.Millisecond, Repeats: 2} }

// InterpKernel is one benchmark program. All kernels are verified
// before execution — quickening only accepts verified methods — and
// each kernel's main returns a checksum that must agree across
// engines.
type InterpKernel struct {
	Name string
	What string
	Src  string
}

// InterpKernels returns the kernel set. Each targets a distinct
// quickening win: fused increments and compare-branches, float
// arithmetic with saturating conv.f2i, call-heavy recursion, exact
// field offsets from allocation-site facts, and array element loops.
func InterpKernels() []InterpKernel {
	return []InterpKernel{
		{
			Name: "intsum",
			What: "integer loop: fused ldloc+ldc+add+stloc increments and cmp+branch",
			Src: `
.method main (0) int32
  .locals 2
  ldc.i4 0
  stloc 0
  ldc.i4 0
  stloc 1
loop:
  ldloc 1
  ldloc 0
  add
  stloc 1
  ldloc 0
  ldc.i4 1
  add
  stloc 0
  ldloc 0
  ldc.i4 300000
  clt
  brtrue loop
  ldloc 1
  ret.val
.end
`,
		},
		{
			Name: "floatpoly",
			What: "float polynomial per iteration, saturating conv.f2i back to int",
			Src: `
.method main (0) int32
  .locals 2
  ldc.i4 0
  stloc 0
  ldc.i4 0
  stloc 1
loop:
  ldloc 0
  conv.i2f
  ldc.r8 0.5
  mul.f
  ldloc 0
  conv.i2f
  ldc.r8 1.25
  mul.f
  add.f
  conv.f2i
  ldloc 1
  add
  stloc 1
  ldloc 0
  ldc.i4 1
  add
  stloc 0
  ldloc 0
  ldc.i4 150000
  clt
  brtrue loop
  ldloc 1
  ret.val
.end
`,
		},
		{
			Name: "fib",
			What: "call-heavy recursion: fused ldarg+call, frame push/pop",
			Src: `
.method fib (1) int32
  ldarg 0
  ldc.i4 2
  clt
  brfalse rec
  ldarg 0
  ret.val
rec:
  ldarg 0
  ldc.i4 1
  sub
  call fib
  ldarg 0
  ldc.i4 2
  sub
  call fib
  add
  ret.val
.end
.method main (0) int32
  ldc.i4 21
  call fib
  ret.val
.end
`,
		},
		{
			Name: "fields",
			What: "object field traffic with allocation-site exact type: baked offsets",
			Src: `
.class Acc
  .field int32 sum
  .field int32 step
.end
.method main (0) int32
  .locals 2
  newobj Acc
  stloc 1
  ldloc 1
  ldc.i4 3
  stfld Acc.step
  ldc.i4 0
  stloc 0
loop:
  ldloc 1
  ldloc 1
  ldfld Acc.sum
  ldloc 1
  ldfld Acc.step
  add
  stfld Acc.sum
  ldloc 0
  ldc.i4 1
  add
  stloc 0
  ldloc 0
  ldc.i4 150000
  clt
  brtrue loop
  ldloc 1
  ldfld Acc.sum
  ret.val
.end
`,
		},
		{
			Name: "arraysum",
			What: "array fill + reduce: exact array type from newarr, fused loop heads",
			Src: `
.method main (0) int32
  .locals 3
  ldc.i4 8192
  newarr int64
  stloc 2
  ldc.i4 0
  stloc 0
fill:
  ldloc 2
  ldloc 0
  ldloc 0
  stelem
  ldloc 0
  ldc.i4 1
  add
  stloc 0
  ldloc 0
  ldc.i4 8192
  clt
  brtrue fill
  ldc.i4 0
  stloc 0
  ldc.i4 0
  stloc 1
sum:
  ldloc 1
  ldloc 2
  ldloc 0
  ldelem
  add
  stloc 1
  ldloc 0
  ldc.i4 1
  add
  stloc 0
  ldloc 0
  ldc.i4 8192
  clt
  brtrue sum
  ldloc 1
  ret.val
.end
`,
		},
	}
}

// InterpKernelResult is one row of the report.
type InterpKernelResult struct {
	Name       string  `json:"name"`
	What       string  `json:"what"`
	Checksum   int64   `json:"checksum"`
	BaselineUs float64 `json:"baseline_us"`
	QuickUs    float64 `json:"quickened_us"`
	Speedup    float64 `json:"speedup"`
	Fused      int     `json:"fused"`
	Devirted   int     `json:"devirted"`
}

// InterpReport is the machine-readable result (BENCH_interp.json).
type InterpReport struct {
	Protocol    map[string]int       `json:"protocol"`
	Kernels     []InterpKernelResult `json:"kernels"`
	BestSpeedup float64              `json:"best_speedup"`
	MeanSpeedup float64              `json:"mean_speedup"`
}

// interpVM assembles and verifies src on a fresh VM sized like the
// transport benchmarks' guests.
func interpVM(src string) (*vm.VM, *vm.Module, error) {
	v := vm.New(vm.Config{Name: "interp", Heap: vm.HeapConfig{
		YoungSize: 2 << 20, InitialElder: 8 << 20, ArenaMax: 512 << 20}})
	mod, err := v.AssembleModule(src)
	if err != nil {
		return nil, nil, err
	}
	if _, err := bcverify.VerifyModule(v, mod.Methods, bcverify.Options{}); err != nil {
		return nil, nil, err
	}
	if mod.Main == nil {
		return nil, nil, fmt.Errorf("kernel has no main")
	}
	return v, mod, nil
}

// timeInterpKernel measures one kernel under one engine and returns
// the checksum, the best mean microseconds per main call, and the
// quickening counters (zero for baseline).
func timeInterpKernel(cfg InterpConfig, src string, quicken bool) (int64, float64, int, int, error) {
	v, mod, err := interpVM(src)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	fused, devirted := 0, 0
	if quicken {
		for _, m := range mod.Methods {
			info, err := v.QuickenMethod(m)
			if err != nil {
				return 0, 0, 0, 0, fmt.Errorf("quicken %s: %w", m.FullName(), err)
			}
			fused += info.Fused
			devirted += info.Devirted
		}
	}
	var sum int64
	best := 0.0
	var callErr error
	v.WithThread("bench", func(th *vm.Thread) {
		// Warmup run also captures the checksum.
		val, err := th.Call(mod.Main)
		if err != nil {
			callErr = err
			return
		}
		sum = val.Int()
		for r := 0; r < cfg.Repeats; r++ {
			iters := 0
			start := time.Now()
			for time.Since(start) < cfg.MinTime {
				if _, err := th.Call(mod.Main); err != nil {
					callErr = err
					return
				}
				iters++
			}
			us := float64(time.Since(start).Microseconds()) / float64(iters)
			if r == 0 || us < best {
				best = us
			}
		}
	})
	if callErr != nil {
		return 0, 0, 0, 0, callErr
	}
	return sum, best, fused, devirted, nil
}

// RunInterpBench measures every kernel under both engines and cross-
// checks the checksums — a speedup from a wrong answer is not a
// speedup.
func RunInterpBench(cfg InterpConfig) (InterpReport, error) {
	rep := InterpReport{Protocol: map[string]int{
		"min_time_ms": int(cfg.MinTime / time.Millisecond),
		"repeats":     cfg.Repeats,
	}}
	for _, k := range InterpKernels() {
		bSum, bUs, _, _, err := timeInterpKernel(cfg, k.Src, false)
		if err != nil {
			return rep, fmt.Errorf("%s baseline: %w", k.Name, err)
		}
		qSum, qUs, fused, devirted, err := timeInterpKernel(cfg, k.Src, true)
		if err != nil {
			return rep, fmt.Errorf("%s quickened: %w", k.Name, err)
		}
		if bSum != qSum {
			return rep, fmt.Errorf("%s: baseline checksum %d, quickened %d", k.Name, bSum, qSum)
		}
		r := InterpKernelResult{
			Name: k.Name, What: k.What, Checksum: bSum,
			BaselineUs: bUs, QuickUs: qUs,
			Fused: fused, Devirted: devirted,
		}
		if qUs > 0 {
			r.Speedup = bUs / qUs
		}
		rep.Kernels = append(rep.Kernels, r)
		if r.Speedup > rep.BestSpeedup {
			rep.BestSpeedup = r.Speedup
		}
		rep.MeanSpeedup += r.Speedup
	}
	if n := len(rep.Kernels); n > 0 {
		rep.MeanSpeedup /= float64(n)
	}
	return rep, nil
}

// MarshalInterpReport renders the report as indented JSON.
func MarshalInterpReport(rep InterpReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// FormatInterpTable renders the result as text.
func FormatInterpTable(rep InterpReport) string {
	out := "interpreter quickening: baseline vs quickened dispatch (us per kernel run)\n"
	out += fmt.Sprintf("%-10s %12s %12s %9s %6s %5s\n",
		"kernel", "baseline", "quickened", "speedup", "fused", "devirt")
	for _, k := range rep.Kernels {
		out += fmt.Sprintf("%-10s %12.1f %12.1f %8.2fx %6d %5d\n",
			k.Name, k.BaselineUs, k.QuickUs, k.Speedup, k.Fused, k.Devirted)
	}
	out += fmt.Sprintf("best %.2fx, mean %.2fx\n", rep.BestSpeedup, rep.MeanSpeedup)
	return out
}
