package serial

import (
	"testing"
)

// FuzzDeserializeStream fuzzes the v2 entry point (which also sniffs
// and dispatches v1). Seeds cover the interesting failure classes:
// valid streams in both formats, truncated chunks, a stale-epoch
// cached stream, and table references with no matching entry.
func FuzzDeserializeStream(f *testing.F) {
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 4, 3)

	v2, err := SerializeStream(src.Heap, head, Options{}, nil)
	if err != nil {
		f.Fatal(err)
	}
	v1, err := Serialize(src.Heap, head, Options{}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v2)
	f.Add(v1)
	// Truncated chunks: cut inside the header, a section header, and a
	// data run.
	f.Add(v2[:8])
	f.Add(v2[:streamHeaderSize+3])
	f.Add(v2[:len(v2)-6])
	f.Add(v1[:len(v1)/2])
	// A cached (nonzero-epoch) stream whose references can never
	// resolve without a mirror: stale epoch + ref-to-missing-entry.
	cache := NewPeerCache(src.TypeGen())
	warm := NewStreamWriter(src.Heap, head, Options{}, 0, cache)
	for !warm.Done() {
		if _, err := warm.Next(nil); err != nil {
			f.Fatal(err)
		}
	}
	cached := NewStreamWriter(src.Heap, head, Options{}, 0, cache)
	var refStream []byte
	for !cached.Done() {
		chunk, err := cached.Next(nil)
		if err != nil {
			f.Fatal(err)
		}
		refStream = append(refStream, chunk...)
	}
	f.Add(refStream)
	f.Add(refStream[:len(refStream)-3])
	// Pure garbage with a valid magic.
	garbage := append([]byte(nil), v2[:streamHeaderSize]...)
	garbage = append(garbage, 0xEE, 0xFF, 0x01, 0x02)
	f.Add(garbage)

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := newVM()
		linkedArrayTypes(dst)
		// Must error or succeed — never panic, never hang.
		_, _ = DeserializeStream(dst, data)
	})
}
