package serial

import (
	"math/rand"
	"testing"

	"motor/internal/vm"
)

// TestDeserializeNeverPanics feeds the reader random garbage and
// random mutations of valid representations: every input must return
// an error or a valid object, never panic — a transport can deliver
// anything.
func TestDeserializeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	v := newVM()
	mt := linkedArrayTypes(v)
	head := buildList(v, mt, 5, 3)
	valid, err := Serialize(v.Heap, head, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	tryOne := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("deserialize panicked on %d bytes: %v", len(data), r)
			}
		}()
		dst := newVM()
		linkedArrayTypes(dst)
		_, _ = Deserialize(dst, data)
	}

	// Pure garbage.
	for i := 0; i < 200; i++ {
		n := rng.Intn(300)
		data := make([]byte, n)
		rng.Read(data)
		tryOne(data)
	}
	// Mutations of a valid representation (bit flips, truncations,
	// and duplications).
	for i := 0; i < 400; i++ {
		data := append([]byte(nil), valid...)
		switch rng.Intn(3) {
		case 0:
			if len(data) > 0 {
				data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
			}
		case 1:
			data = data[:rng.Intn(len(data)+1)]
		case 2:
			at := rng.Intn(len(data))
			data = append(data[:at], append([]byte{byte(rng.Intn(256))}, data[at:]...)...)
		}
		tryOne(data)
	}
}

// TestGatherPartsNeverPanic: the gather path receives parts from the
// wire too.
func TestGatherPartsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := newVM()
	arr, _ := v.Heap.NewInt32Array([]int32{1, 2, 3, 4})
	parts, err := SerializeSplit(v.Heap, arr, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		mutated := make([][]byte, len(parts))
		for j := range parts {
			mutated[j] = append([]byte(nil), parts[j]...)
			if len(mutated[j]) > 0 && rng.Intn(2) == 0 {
				mutated[j][rng.Intn(len(mutated[j]))] ^= 0xFF
			}
			if rng.Intn(4) == 0 {
				mutated[j] = mutated[j][:rng.Intn(len(mutated[j])+1)]
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("gather panicked: %v", r)
				}
			}()
			dst := newVM()
			_, _ = DeserializeGather(dst, mutated)
		}()
	}
}

var _ = vm.NullRef
