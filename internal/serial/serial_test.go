package serial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"motor/internal/vm"
)

func newVM() *vm.VM {
	return vm.New(vm.Config{Heap: vm.HeapConfig{YoungSize: 256 << 10, InitialElder: 1 << 20, ArenaMax: 128 << 20}})
}

// linkedArrayTypes registers the paper's Fig. 5 LinkedArray class:
// array and next are Transportable, next2 is not.
func linkedArrayTypes(v *vm.VM) *vm.MethodTable {
	mt, err := v.DeclareClass("LinkedArray")
	if err != nil {
		panic(err)
	}
	i32arr := v.ArrayType(vm.KindInt32, nil, 1)
	if err := v.CompleteClass(mt, nil, []vm.FieldSpec{
		{Name: "array", Kind: vm.KindRef, Type: i32arr, Transportable: true},
		{Name: "next", Kind: vm.KindRef, Type: mt, Transportable: true},
		{Name: "next2", Kind: vm.KindRef, Type: mt},
		{Name: "id", Kind: vm.KindInt32},
	}); err != nil {
		panic(err)
	}
	return mt
}

// buildList creates a LinkedArray list of n nodes, each with a
// payload array of payloadLen int32s; next links them, next2 points
// back at the head (must NOT travel).
func buildList(v *vm.VM, mt *vm.MethodTable, n, payloadLen int) vm.Ref {
	h := v.Heap
	fArr, fNext, fNext2, fID := mt.FieldByName("array"), mt.FieldByName("next"), mt.FieldByName("next2"), mt.FieldByName("id")
	guard := &refGuard{refs: make([]vm.Ref, 2)}
	v.AddRootProvider(guard)
	defer v.RemoveRootProvider(guard)
	var head vm.Ref
	for i := n - 1; i >= 0; i-- {
		node, err := h.AllocClass(mt)
		if err != nil {
			panic(err)
		}
		guard.refs[1] = node
		vals := make([]int32, payloadLen)
		for j := range vals {
			vals[j] = int32(i*1000 + j)
		}
		arr, err := h.NewInt32Array(vals)
		if err != nil {
			panic(err)
		}
		node = guard.refs[1]
		h.SetRef(node, fArr, arr)
		h.SetScalar(node, fID, uint64(uint32(int32(i))))
		if head != vm.NullRef {
			h.SetRef(node, fNext, guard.refs[0])
		}
		guard.refs[0] = node
		head = node
		_ = fNext2
	}
	return guard.refs[0]
}

func TestRoundtripSingleObjectNullsRefs(t *testing.T) {
	// A single non-array object: simple data travels, references are
	// replaced with null unless Transportable.
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 3, 4)

	data, err := Serialize(src.Heap, head, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	dmt := linkedArrayTypes(dst)
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	h := dst.Heap
	if h.MT(out) != dmt {
		t.Fatalf("root type %s", h.MT(out))
	}
	// Transportable chain travelled: 3 nodes with arrays.
	count := 0
	for n := out; n != vm.NullRef; n = h.GetRef(n, dmt.FieldByName("next")) {
		if got := int32(uint32(h.GetScalar(n, dmt.FieldByName("id")))); got != int32(count) {
			t.Errorf("node %d id %d", count, got)
		}
		arr := h.GetRef(n, dmt.FieldByName("array"))
		if arr == vm.NullRef {
			t.Fatalf("node %d array missing", count)
		}
		vals := h.Int32Slice(arr)
		if vals[0] != int32(count*1000) {
			t.Errorf("node %d payload %v", count, vals[:2])
		}
		// next2 must NOT have travelled.
		if h.GetRef(n, dmt.FieldByName("next2")) != vm.NullRef {
			t.Errorf("node %d next2 travelled despite missing Transportable", count)
		}
		count++
	}
	if count != 3 {
		t.Errorf("list length %d", count)
	}
	n, err := ObjectCount(data)
	if err != nil || n != 6 { // 3 nodes + 3 arrays
		t.Errorf("object count %d err %v", n, err)
	}
}

func TestSharedObjectPreserved(t *testing.T) {
	// Two nodes referencing the same array must share it after the
	// round trip (local-id aliasing, not duplication).
	v := newVM()
	mt := linkedArrayTypes(v)
	h := v.Heap
	fArr, fNext := mt.FieldByName("array"), mt.FieldByName("next")

	guard := &refGuard{refs: make([]vm.Ref, 3)}
	v.AddRootProvider(guard)
	a, _ := h.AllocClass(mt)
	guard.refs[0] = a
	b, _ := h.AllocClass(mt)
	guard.refs[1] = b
	shared, _ := h.NewInt32Array([]int32{9, 9, 9})
	guard.refs[2] = shared
	a, b = guard.refs[0], guard.refs[1]
	h.SetRef(a, fNext, b)
	h.SetRef(a, fArr, guard.refs[2])
	h.SetRef(b, fArr, guard.refs[2])
	v.RemoveRootProvider(guard)

	data, err := Serialize(h, a, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := ObjectCount(data)
	if n != 3 { // a, b, shared — not 4
		t.Errorf("object count %d (shared object duplicated?)", n)
	}
	dst := newVM()
	dmt := linkedArrayTypes(dst)
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	dh := dst.Heap
	oa := dh.GetRef(out, dmt.FieldByName("array"))
	ob := dh.GetRef(dh.GetRef(out, dmt.FieldByName("next")), dmt.FieldByName("array"))
	if oa != ob {
		t.Error("shared array duplicated on receive")
	}
}

func TestCycleSerialization(t *testing.T) {
	// next chains may form a cycle; the visited set must terminate it.
	v := newVM()
	mt := linkedArrayTypes(v)
	h := v.Heap
	fNext := mt.FieldByName("next")
	guard := &refGuard{refs: make([]vm.Ref, 2)}
	v.AddRootProvider(guard)
	a, _ := h.AllocClass(mt)
	guard.refs[0] = a
	b, _ := h.AllocClass(mt)
	guard.refs[1] = b
	a = guard.refs[0]
	h.SetRef(a, fNext, b)
	h.SetRef(b, fNext, a) // cycle
	v.RemoveRootProvider(guard)

	data, err := Serialize(h, a, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	dmt := linkedArrayTypes(dst)
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	dh := dst.Heap
	ob := dh.GetRef(out, dmt.FieldByName("next"))
	if dh.GetRef(ob, dmt.FieldByName("next")) != out {
		t.Error("cycle not reconstructed")
	}
}

func TestObjectArrayTravelsWithElements(t *testing.T) {
	v := newVM()
	mt := linkedArrayTypes(v)
	h := v.Heap
	arrT := v.ArrayType(vm.KindRef, mt, 1)
	guard := &refGuard{refs: make([]vm.Ref, 1)}
	v.AddRootProvider(guard)
	arr, _ := h.AllocArray(arrT, 5)
	guard.refs[0] = arr
	for i := 0; i < 5; i++ {
		node, _ := h.AllocClass(mt)
		h.SetScalar(node, mt.FieldByName("id"), uint64(uint32(int32(i*7))))
		h.SetElemRef(guard.refs[0], i, node)
	}
	arr = guard.refs[0]
	v.RemoveRootProvider(guard)

	data, err := Serialize(h, arr, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	dmt := linkedArrayTypes(dst)
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	dh := dst.Heap
	if dh.Length(out) != 5 {
		t.Fatalf("length %d", dh.Length(out))
	}
	for i := 0; i < 5; i++ {
		node := dh.GetElemRef(out, i)
		if node == vm.NullRef {
			t.Fatalf("element %d missing", i)
		}
		if got := int32(uint32(dh.GetScalar(node, dmt.FieldByName("id")))); got != int32(i*7) {
			t.Errorf("element %d id %d", i, got)
		}
	}
}

func TestSimpleArrayRoundtrip(t *testing.T) {
	v := newVM()
	ref, _ := v.Heap.NewFloat64Array([]float64{1.5, -2.25, 3e100})
	data, err := Serialize(v.Heap, ref, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	got := dst.Heap.Float64Slice(out)
	if got[0] != 1.5 || got[1] != -2.25 || got[2] != 3e100 {
		t.Errorf("values %v", got)
	}
}

func TestMultiDimArrayRoundtrip(t *testing.T) {
	v := newVM()
	at := v.ArrayType(vm.KindInt32, nil, 2)
	ref, err := v.Heap.AllocMultiDim(at, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		v.Heap.SetElem(ref, i, uint64(uint32(int32(i*i))))
	}
	data, err := Serialize(v.Heap, ref, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	dims := dst.Heap.Dims(out)
	if len(dims) != 2 || dims[0] != 2 || dims[1] != 3 {
		t.Fatalf("dims %v", dims)
	}
	if got := int32(uint32(dst.Heap.GetElem(out, 5))); got != 25 {
		t.Errorf("elem 5 = %d", got)
	}
}

func TestNullRoot(t *testing.T) {
	v := newVM()
	data, err := Serialize(v.Heap, vm.NullRef, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Deserialize(newVM(), data)
	if err != nil {
		t.Fatal(err)
	}
	if out != vm.NullRef {
		t.Error("null root not null")
	}
}

func TestMissingTypeRejected(t *testing.T) {
	v := newVM()
	mt := linkedArrayTypes(v)
	h := v.Heap
	node, _ := h.AllocClass(mt)
	data, err := Serialize(h, node, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Receiver without LinkedArray registered.
	dst := newVM()
	if _, err := Deserialize(dst, data); err == nil {
		t.Error("deserialize into typeless VM succeeded")
	}
}

func TestCorruptDataRejected(t *testing.T) {
	v := newVM()
	ref, _ := v.Heap.NewInt32Array([]int32{1, 2, 3})
	data, _ := Serialize(v.Heap, ref, Options{}, nil)
	for _, mut := range []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { c := clone(b); c[0] ^= 0xFF; return c }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad version", func(b []byte) []byte { c := clone(b); c[4] = 99; return c }},
	} {
		if _, err := Deserialize(newVM(), mut.fn(data)); err == nil {
			t.Errorf("%s accepted", mut.name)
		}
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestSplitRepresentation(t *testing.T) {
	v := newVM()
	mt := linkedArrayTypes(v)
	h := v.Heap
	arrT := v.ArrayType(vm.KindRef, mt, 1)
	guard := &refGuard{refs: make([]vm.Ref, 1)}
	v.AddRootProvider(guard)
	arr, _ := h.AllocArray(arrT, 10)
	guard.refs[0] = arr
	for i := 0; i < 10; i++ {
		node, _ := h.AllocClass(mt)
		h.SetScalar(node, mt.FieldByName("id"), uint64(uint32(int32(i))))
		h.SetElemRef(guard.refs[0], i, node)
	}
	v.RemoveRootProvider(guard)
	arr = guard.refs[0]

	parts, err := SerializeSplit(h, arr, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("%d parts", len(parts))
	}
	// Each part deserializes standalone (possibly on different VMs).
	sizes := []int{4, 3, 3}
	for p, part := range parts {
		dst := newVM()
		dmt := linkedArrayTypes(dst)
		sub, err := Deserialize(dst, part)
		if err != nil {
			t.Fatalf("part %d: %v", p, err)
		}
		if dst.Heap.Length(sub) != sizes[p] {
			t.Errorf("part %d length %d, want %d", p, dst.Heap.Length(sub), sizes[p])
		}
		lo, _ := PartRange(10, 3, p)
		for i := 0; i < sizes[p]; i++ {
			node := dst.Heap.GetElemRef(sub, i)
			if got := int32(uint32(dst.Heap.GetScalar(node, dmt.FieldByName("id")))); got != int32(lo+i) {
				t.Errorf("part %d elem %d id %d, want %d", p, i, got, lo+i)
			}
		}
	}
	// Gather reconstructs the original array.
	dst := newVM()
	dmt := linkedArrayTypes(dst)
	whole, err := DeserializeGather(dst, parts)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Heap.Length(whole) != 10 {
		t.Fatalf("gathered length %d", dst.Heap.Length(whole))
	}
	for i := 0; i < 10; i++ {
		node := dst.Heap.GetElemRef(whole, i)
		if got := int32(uint32(dst.Heap.GetScalar(node, dmt.FieldByName("id")))); got != int32(i) {
			t.Errorf("gathered elem %d id %d", i, got)
		}
	}
}

func TestSplitSimpleArray(t *testing.T) {
	v := newVM()
	vals := make([]int32, 100)
	for i := range vals {
		vals[i] = int32(i * 3)
	}
	arr, _ := v.Heap.NewInt32Array(vals)
	parts, err := SerializeSplit(v.Heap, arr, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	whole, err := DeserializeGather(dst, parts)
	if err != nil {
		t.Fatal(err)
	}
	got := dst.Heap.Int32Slice(whole)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("elem %d = %d", i, got[i])
		}
	}
}

func TestPartRangeCoversExactly(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		nn := int(n % 1000)
		pp := int(parts%16) + 1
		covered := 0
		prevHi := 0
		for p := 0; p < pp; p++ {
			lo, hi := PartRange(nn, pp, p)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == nn && prevHi == nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoundtripRandomLists is the serializer's property test:
// random linked lists with random payloads and visited modes must
// round-trip exactly.
func TestQuickRoundtripRandomLists(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 25; iter++ {
		n := 1 + rng.Intn(40)
		payload := rng.Intn(32)
		mode := VisitedMode(rng.Intn(2))

		src := newVM()
		mt := linkedArrayTypes(src)
		head := buildList(src, mt, n, payload)
		data, err := Serialize(src.Heap, head, Options{Visited: mode}, nil)
		if err != nil {
			t.Fatal(err)
		}

		dst := newVM()
		dmt := linkedArrayTypes(dst)
		out, err := Deserialize(dst, data)
		if err != nil {
			t.Fatal(err)
		}
		h := dst.Heap
		count := 0
		for node := out; node != vm.NullRef; node = h.GetRef(node, dmt.FieldByName("next")) {
			if got := int32(uint32(h.GetScalar(node, dmt.FieldByName("id")))); got != int32(count) {
				t.Fatalf("iter %d node %d id %d", iter, count, got)
			}
			arr := h.GetRef(node, dmt.FieldByName("array"))
			if payload == 0 {
				if h.Length(arr) != 0 {
					t.Fatalf("iter %d: payload length %d", iter, h.Length(arr))
				}
			} else {
				vals := h.Int32Slice(arr)
				for j, val := range vals {
					if val != int32(count*1000+j) {
						t.Fatalf("iter %d node %d payload[%d]=%d", iter, count, j, val)
					}
				}
			}
			count++
		}
		if count != n {
			t.Fatalf("iter %d: %d nodes, want %d", iter, count, n)
		}
	}
}

func TestVisitedModesAgree(t *testing.T) {
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 20, 8)
	a, err := Serialize(src.Heap, head, Options{Visited: VisitedLinear}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Serialize(src.Heap, head, Options{Visited: VisitedMap}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("linear and map visited modes produce different bytes")
	}
}
