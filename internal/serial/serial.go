// Package serial implements the Motor custom serialization mechanism
// (paper §7.5): a flat object-tree representation with two parts — a
// type table describing every class involved, and object data laid
// out side by side with object references exchanged for local ids.
//
// Traversal is driven by the Transportable bit carried directly on
// the runtime FieldDesc (never by slow reflection metadata):
//
//   - a single object's simple data travels; reference fields NOT
//     marked Transportable are replaced with null on the wire;
//   - fields marked Transportable are followed recursively;
//   - arrays of objects travel together with their element objects;
//   - arrays of simple types travel as raw element data.
//
// To support scatter/gather of object arrays, the serializer can emit
// a SPLIT representation: many standalone parts, each with its own
// type table and each individually deserializable at the receiving
// end — the capability the standard Java/CLI serializers lack
// (paper §2.4, §7.5).
//
// The visited-object structure is selectable: VisitedLinear is the
// paper's implementation ("a linear structure to record objects
// visited during serialization", the cause of the large-object-count
// degradation in Figure 10); VisitedMap is the efficient structure
// the authors name as future work. Ablation A2 benchmarks the two.
package serial

import (
	"encoding/binary"
	"errors"

	"motor/internal/vm"
)

// Wire format constants.
const (
	magic   = 0x4D53_4552 // "MSER"
	version = 1

	kindClassEntry = 0
	kindArrayEntry = 1
)

// Errors.
var (
	ErrFormat   = errors.New("serial: malformed representation")
	ErrTypeless = errors.New("serial: receiver has no matching type")
	ErrShape    = errors.New("serial: type shape mismatch between sender and receiver")
)

// VisitedMode selects the visited-object bookkeeping structure.
type VisitedMode uint8

// Visited-structure choices (see package comment).
const (
	VisitedLinear VisitedMode = iota
	VisitedMap
)

// Options configures a serializer.
type Options struct {
	Visited VisitedMode
}

// visitedSet records serialized objects and their 1-based local ids.
// visit lets a streaming serialization survive collections between
// chunks: the recorded refs are GC roots and must follow moved
// objects, or later lookups would miss and re-emit duplicates.
type visitedSet interface {
	lookup(ref vm.Ref) (uint32, bool)
	add(ref vm.Ref, id uint32)
	count() int
	visit(visit func(vm.Ref) vm.Ref)
}

// linearVisited is the paper's structure: lookup scans the whole
// list, so cost grows quadratically with the object count.
type linearVisited struct {
	refs []vm.Ref
	ids  []uint32
}

func (l *linearVisited) lookup(ref vm.Ref) (uint32, bool) {
	for i, r := range l.refs {
		if r == ref {
			return l.ids[i], true
		}
	}
	return 0, false
}

func (l *linearVisited) add(ref vm.Ref, id uint32) {
	l.refs = append(l.refs, ref)
	l.ids = append(l.ids, id)
}

func (l *linearVisited) count() int { return len(l.refs) }

func (l *linearVisited) visit(visit func(vm.Ref) vm.Ref) {
	for i, r := range l.refs {
		l.refs[i] = visit(r)
	}
}

type mapVisited map[vm.Ref]uint32

func (m mapVisited) lookup(ref vm.Ref) (uint32, bool) {
	id, ok := m[ref]
	return id, ok
}

func (m mapVisited) add(ref vm.Ref, id uint32) { m[ref] = id }
func (m mapVisited) count() int                { return len(m) }

func (m mapVisited) visit(visit func(vm.Ref) vm.Ref) {
	// Keys are ref values, so a move must re-key the map.
	type pair struct {
		ref vm.Ref
		id  uint32
	}
	moved := make([]pair, 0, len(m))
	for r, id := range m {
		moved = append(moved, pair{visit(r), id})
	}
	for r := range m {
		delete(m, r)
	}
	for _, p := range moved {
		m[p.ref] = p.id
	}
}

// writer builds the representation.
type writer struct {
	heap *vm.Heap

	types   []*vm.MethodTable
	typeIdx map[*vm.MethodTable]uint16
	visited visitedSet
	pending []vm.Ref // discovered but not yet emitted, in id order
	objData []byte
	nextID  uint32
}

func newWriter(h *vm.Heap, opts Options) *writer {
	w := &writer{
		heap:    h,
		typeIdx: make(map[*vm.MethodTable]uint16),
		nextID:  1,
	}
	if opts.Visited == VisitedMap {
		w.visited = mapVisited{}
	} else {
		w.visited = &linearVisited{}
	}
	return w
}

// assign returns the local id for ref, scheduling it for emission on
// first sight. includeRefs=false callers still get an id (null is 0).
func (w *writer) assign(ref vm.Ref) uint32 {
	if ref == vm.NullRef {
		return 0
	}
	if id, ok := w.visited.lookup(ref); ok {
		return id
	}
	id := w.nextID
	w.nextID++
	w.visited.add(ref, id)
	w.pending = append(w.pending, ref)
	return id
}

func (w *writer) typeIndex(mt *vm.MethodTable) uint16 {
	if i, ok := w.typeIdx[mt]; ok {
		return i
	}
	i := uint16(len(w.types))
	w.types = append(w.types, mt)
	w.typeIdx[mt] = i
	return i
}

// emit serializes one object's record into objData.
func (w *writer) emit(ref vm.Ref) error {
	h := w.heap
	mt := h.MT(ref)
	ti := w.typeIndex(mt)
	w.u16(ti)
	if mt.Kind == vm.TKArray {
		n := h.Length(ref)
		w.u32(uint32(n))
		if mt.Elem == vm.KindRef {
			// Arrays travel together with their element objects.
			for i := 0; i < n; i++ {
				w.u32(w.assign(h.GetElemRef(ref, i)))
			}
			return nil
		}
		// Simple arrays: raw element data (including multidim dims).
		if mt.Rank > 1 {
			for _, d := range h.Dims(ref) {
				w.u32(uint32(d))
			}
		}
		w.objData = append(w.objData, h.DataBytes(ref)...)
		return nil
	}
	// Class instance: per-field emission so reference fields can be
	// swapped for local ids (or null when not Transportable).
	for i := range mt.Fields {
		f := &mt.Fields[i]
		if f.IsRef() {
			if f.Transportable() {
				w.u32(w.assign(h.GetRef(ref, f)))
			} else {
				w.u32(0) // reference replaced with null (paper §4.2.2)
			}
			continue
		}
		bits := h.GetScalar(ref, f)
		w.scalar(f.Kind(), bits)
	}
	return nil
}

func (w *writer) u16(v uint16) {
	w.objData = append(w.objData, byte(v), byte(v>>8))
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.objData = append(w.objData, b[:]...)
}

func (w *writer) scalar(k vm.Kind, bits uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], bits)
	w.objData = append(w.objData, b[:k.Size()]...)
}

// finish assembles header + type table + object data.
func (w *writer) finish(rootID uint32, out []byte) []byte {
	out = appendU32(out, magic)
	out = append(out, version, 0, 0, 0)
	out = appendU32(out, rootID)
	out = appendU32(out, w.nextID-1) // object count
	// Type table.
	out = appendU16(out, uint16(len(w.types)))
	for _, mt := range w.types {
		out = appendTypeEntry(out, mt)
	}
	return append(out, w.objData...)
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func appendU32(b []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}

func appendString(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// appendTypeEntry writes one type-table record: enough shape
// information for the receiver to locate its local equivalent and
// validate layout compatibility.
func appendTypeEntry(b []byte, mt *vm.MethodTable) []byte {
	if mt.Kind == vm.TKArray {
		b = append(b, kindArrayEntry)
		b = append(b, byte(mt.Elem), byte(mt.Rank))
		if mt.Elem == vm.KindRef && mt.ElemMT != nil {
			b = appendString(b, mt.ElemMT.Name)
		} else {
			b = appendString(b, "")
		}
		return b
	}
	b = append(b, kindClassEntry)
	b = appendString(b, mt.Name)
	b = appendU16(b, uint16(len(mt.Fields)))
	for i := range mt.Fields {
		f := &mt.Fields[i]
		b = appendString(b, f.Name)
		flags := byte(0)
		if f.Transportable() {
			flags = 1
		}
		b = append(b, byte(f.Kind()), flags)
	}
	return b
}

// Serialize flattens the object tree rooted at root into out
// (appended; pass nil or a recycled buffer). The returned slice is
// the complete representation.
func Serialize(h *vm.Heap, root vm.Ref, opts Options, out []byte) ([]byte, error) {
	w := newWriter(h, opts)
	rootID := w.assign(root)
	for len(w.pending) > 0 {
		ref := w.pending[0]
		w.pending = w.pending[1:]
		if err := w.emit(ref); err != nil {
			return nil, err
		}
	}
	return w.finish(rootID, out), nil
}

// ObjectCount reports how many objects a representation carries.
func ObjectCount(data []byte) (int, error) {
	if len(data) < 16 || binary.LittleEndian.Uint32(data) != magic {
		return 0, ErrFormat
	}
	return int(binary.LittleEndian.Uint32(data[12:])), nil
}
