package serial

import (
	"errors"
	"math/rand"
	"testing"

	"motor/internal/vm"
)

// collectStream runs a StreamWriter to completion with the given chunk
// target, returning the individual chunks.
func collectStream(t *testing.T, sw *StreamWriter) [][]byte {
	t.Helper()
	var chunks [][]byte
	for !sw.Done() {
		chunk, err := sw.Next(nil)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		chunks = append(chunks, chunk)
	}
	return chunks
}

// feedStream drives a StreamReader over the chunks, optionally breaking
// each chunk into pieces of at most pieceMax bytes to exercise the
// incremental section scanner across arbitrary boundaries.
func feedStream(v *vm.VM, mirror *TableMirror, chunks [][]byte, pieceMax int) (*StreamReader, error) {
	sr := NewStreamReader(v, mirror, nil)
	v.AddRootProvider(sr)
	defer v.RemoveRootProvider(sr)
	for _, chunk := range chunks {
		for len(chunk) > 0 {
			n := len(chunk)
			if pieceMax > 0 && n > pieceMax {
				n = pieceMax
			}
			copy(sr.Grow(n), chunk[:n])
			if err := sr.Commit(n); err != nil {
				return sr, err
			}
			chunk = chunk[n:]
		}
	}
	return sr, nil
}

func TestStreamRoundtrip(t *testing.T) {
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 10, 16)
	data, err := SerializeStream(src.Heap, head, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	dmt := linkedArrayTypes(dst)
	out, err := DeserializeStream(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	h := dst.Heap
	count := 0
	for n := out; n != vm.NullRef; n = h.GetRef(n, dmt.FieldByName("next")) {
		if got := int32(uint32(h.GetScalar(n, dmt.FieldByName("id")))); got != int32(count) {
			t.Fatalf("node %d id %d", count, got)
		}
		if h.GetRef(n, dmt.FieldByName("next2")) != vm.NullRef {
			t.Fatalf("node %d: next2 travelled", count)
		}
		count++
	}
	if count != 10 {
		t.Fatalf("list length %d", count)
	}
}

func TestStreamAcceptsV1(t *testing.T) {
	// The stream entry point must keep deserializing v1 one-shot
	// representations (wire compatibility with old senders).
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 4, 8)
	v1, err := Serialize(src.Heap, head, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	linkedArrayTypes(dst)
	out, err := DeserializeStream(dst, v1)
	if err != nil {
		t.Fatalf("v1 representation rejected: %v", err)
	}
	if out == vm.NullRef {
		t.Fatal("null result")
	}
}

func TestStreamVisitedModesAgree(t *testing.T) {
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 20, 8)
	a, err := SerializeStream(src.Heap, head, Options{Visited: VisitedLinear}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SerializeStream(src.Heap, head, Options{Visited: VisitedMap}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("linear and map visited modes produce different stream bytes")
	}
}

func TestStreamChunkedSmallTarget(t *testing.T) {
	// A tiny chunk target must yield many chunks, each independently
	// transportable, and the reader must reassemble across arbitrary
	// piece boundaries (including byte-at-a-time).
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 12, 8)
	sw := NewStreamWriter(src.Heap, head, Options{}, 64, nil)
	src.AddRootProvider(sw)
	chunks := collectStream(t, sw)
	src.RemoveRootProvider(sw)
	if len(chunks) < 4 {
		t.Fatalf("only %d chunks at target 64", len(chunks))
	}
	for _, pieceMax := range []int{0, 1, 7} {
		dst := newVM()
		dmt := linkedArrayTypes(dst)
		sr, err := feedStream(dst, nil, chunks, pieceMax)
		if err != nil {
			t.Fatalf("pieceMax %d: %v", pieceMax, err)
		}
		if !sr.Ended() {
			t.Fatalf("pieceMax %d: stream not ended", pieceMax)
		}
		out, err := sr.Finish()
		if err != nil {
			t.Fatalf("pieceMax %d: Finish: %v", pieceMax, err)
		}
		h := dst.Heap
		count := 0
		for n := out; n != vm.NullRef; n = h.GetRef(n, dmt.FieldByName("next")) {
			count++
		}
		if count != 12 {
			t.Fatalf("pieceMax %d: %d nodes", pieceMax, count)
		}
	}
}

func TestStreamCacheRefsSecondSend(t *testing.T) {
	// First stream to a peer ships full type entries; the second stream
	// of the same shapes ships only 5-byte references — zero type-entry
	// bytes — and the receiver resolves them from its mirror without a
	// NACK.
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 5, 4)
	cache := NewPeerCache(src.TypeGen())

	sw1 := NewStreamWriter(src.Heap, head, Options{}, 0, cache)
	chunks1 := collectStream(t, sw1)
	if sw1.TableFulls == 0 || sw1.TableRefs != 0 {
		t.Fatalf("first stream: fulls=%d refs=%d", sw1.TableFulls, sw1.TableRefs)
	}

	dst := newVM()
	linkedArrayTypes(dst)
	mirror := NewTableMirror()
	sr1, err := feedStream(dst, mirror, chunks1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr1.Finish(); err != nil {
		t.Fatal(err)
	}
	if mirror.Entries() != sw1.TableFulls {
		t.Fatalf("mirror holds %d entries, want %d", mirror.Entries(), sw1.TableFulls)
	}

	sw2 := NewStreamWriter(src.Heap, head, Options{}, 0, cache)
	chunks2 := collectStream(t, sw2)
	if sw2.TableFulls != 0 || sw2.TableRefs == 0 || sw2.TableBytes != 0 {
		t.Fatalf("second stream: fulls=%d refs=%d bytes=%d", sw2.TableFulls, sw2.TableRefs, sw2.TableBytes)
	}
	sr2, err := feedStream(dst, mirror, chunks2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sr2.SawRefs() {
		t.Error("receiver did not see table references")
	}
	if sr2.MissingTables() != 0 {
		t.Fatalf("%d unresolved references with a warm mirror", sr2.MissingTables())
	}
	if _, err := sr2.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamNackInstallTable(t *testing.T) {
	// A cached stream arriving at a cold mirror stalls; installing the
	// sender's TableBlob completes the parse — the NACK recovery path.
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 4, 4)
	cache := NewPeerCache(src.TypeGen())
	// Warm the cache with a first stream nobody reads.
	collectStream(t, NewStreamWriter(src.Heap, head, Options{}, 0, cache))

	sw := NewStreamWriter(src.Heap, head, Options{}, 0, cache)
	chunks := collectStream(t, sw)
	if sw.TableRefs == 0 {
		t.Fatal("second stream carries no references")
	}
	blob, err := sw.TableBlob(nil)
	if err != nil {
		t.Fatal(err)
	}

	dst := newVM()
	linkedArrayTypes(dst)
	sr, err := feedStream(dst, NewTableMirror(), chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.MissingTables() == 0 {
		t.Fatal("cold mirror resolved references")
	}
	if _, err := sr.Finish(); !errors.Is(err, ErrTypeless) {
		t.Fatalf("Finish before install: %v, want ErrTypeless", err)
	}
	dst2 := newVM()
	linkedArrayTypes(dst2)
	sr2, err := feedStream(dst2, NewTableMirror(), chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst2.AddRootProvider(sr2)
	defer dst2.RemoveRootProvider(sr2)
	if err := sr2.InstallTable(blob); err != nil {
		t.Fatal(err)
	}
	if sr2.MissingTables() != 0 {
		t.Fatalf("%d still unresolved after install", sr2.MissingTables())
	}
	if _, err := sr2.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamEpochInvalidation(t *testing.T) {
	// A cache flush (registry churn) bumps the epoch; the mirror drops
	// its entries when the new epoch arrives, and the stream — full
	// tables again after the flush — still round-trips.
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 3, 4)
	cache := NewPeerCache(src.TypeGen())
	collectStream(t, NewStreamWriter(src.Heap, head, Options{}, 0, cache))
	oldEpoch := cache.Epoch

	dst := newVM()
	linkedArrayTypes(dst)
	mirror := NewTableMirror()
	sw := NewStreamWriter(src.Heap, head, Options{}, 0, cache)
	chunks := collectStream(t, sw)
	blob, _ := sw.TableBlob(nil)
	sr, err := feedStream(dst, mirror, chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.InstallTable(blob); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Finish(); err != nil {
		t.Fatal(err)
	}
	if mirror.Entries() == 0 {
		t.Fatal("mirror empty after install")
	}

	if !cache.Sync(src.TypeGen() + 1) {
		t.Fatal("Sync did not flush on generation change")
	}
	if cache.Epoch == oldEpoch || cache.Entries() != 0 {
		t.Fatalf("epoch %d entries %d after flush", cache.Epoch, cache.Entries())
	}
	sw2 := NewStreamWriter(src.Heap, head, Options{}, 0, cache)
	chunks2 := collectStream(t, sw2)
	if sw2.TableRefs != 0 {
		t.Fatal("flushed cache still emitted references")
	}
	sr2, err := feedStream(dst, mirror, chunks2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mirror.Epoch != cache.Epoch {
		t.Fatalf("mirror epoch %d, want %d", mirror.Epoch, cache.Epoch)
	}
	if _, err := sr2.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamPartRoundtrip(t *testing.T) {
	v := newVM()
	mt := linkedArrayTypes(v)
	h := v.Heap
	arrT := v.ArrayType(vm.KindRef, mt, 1)
	guard := &refGuard{refs: make([]vm.Ref, 1)}
	v.AddRootProvider(guard)
	arr, _ := h.AllocArray(arrT, 9)
	guard.refs[0] = arr
	for i := 0; i < 9; i++ {
		node, _ := h.AllocClass(mt)
		h.SetScalar(node, mt.FieldByName("id"), uint64(uint32(int32(i))))
		h.SetElemRef(guard.refs[0], i, node)
	}
	arr = guard.refs[0]
	v.RemoveRootProvider(guard)

	sw, err := NewStreamWriterPart(h, arr, 3, 7, Options{}, 128)
	if err != nil {
		t.Fatal(err)
	}
	chunks := collectStream(t, sw)
	dst := newVM()
	dmt := linkedArrayTypes(dst)
	sr, err := feedStream(dst, nil, chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if dst.Heap.Length(sub) != 4 {
		t.Fatalf("part length %d", dst.Heap.Length(sub))
	}
	for i := 0; i < 4; i++ {
		node := dst.Heap.GetElemRef(sub, i)
		if got := int32(uint32(dst.Heap.GetScalar(node, dmt.FieldByName("id")))); got != int32(3+i) {
			t.Errorf("elem %d id %d", i, got)
		}
	}

	// Simple-kind parts take the payload-copy path.
	vals := make([]int32, 50)
	for i := range vals {
		vals[i] = int32(i * 2)
	}
	ints, _ := h.NewInt32Array(vals)
	swi, err := NewStreamWriterPart(h, ints, 10, 20, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DeserializeStream(newVM(), concatChunks(collectStream(t, swi)))
	if err != nil {
		t.Fatal(err)
	}
	_ = out
}

func concatChunks(chunks [][]byte) []byte {
	var all []byte
	for _, c := range chunks {
		all = append(all, c...)
	}
	return all
}

func TestStreamPartErrors(t *testing.T) {
	v := newVM()
	mt := linkedArrayTypes(v)
	if _, err := NewStreamWriterPart(v.Heap, vm.NullRef, 0, 0, Options{}, 0); err == nil {
		t.Error("null part accepted")
	}
	node, _ := v.Heap.AllocClass(mt)
	if _, err := NewStreamWriterPart(v.Heap, node, 0, 0, Options{}, 0); err == nil {
		t.Error("class part accepted")
	}
	arr, _ := v.Heap.NewInt32Array([]int32{1, 2})
	if _, err := NewStreamWriterPart(v.Heap, arr, 1, 5, Options{}, 0); err == nil {
		t.Error("out-of-range part accepted")
	}
}

func TestStreamTruncationErrors(t *testing.T) {
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 4, 4)
	data, err := SerializeStream(src.Heap, head, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, streamHeaderSize, len(data) / 2, len(data) - 1} {
		dst := newVM()
		linkedArrayTypes(dst)
		sr := NewStreamReader(dst, nil, nil)
		dst.AddRootProvider(sr)
		copy(sr.Grow(cut), data[:cut])
		err := sr.Commit(cut)
		if err == nil {
			_, err = sr.Finish()
		}
		dst.RemoveRootProvider(sr)
		if err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestStreamRefWithoutMirrorFails(t *testing.T) {
	// A cached stream read through the mirror-less one-shot path must
	// fail typed, not panic or fabricate types.
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 3, 2)
	cache := NewPeerCache(src.TypeGen())
	collectStream(t, NewStreamWriter(src.Heap, head, Options{}, 0, cache))
	data := concatChunks(collectStream(t, NewStreamWriter(src.Heap, head, Options{}, 0, cache)))

	dst := newVM()
	linkedArrayTypes(dst)
	if _, err := DeserializeStream(dst, data); !errors.Is(err, ErrTypeless) {
		t.Fatalf("err %v, want ErrTypeless", err)
	}
}

func TestStreamBlobEpochMismatchRejected(t *testing.T) {
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 2, 2)
	cache := NewPeerCache(src.TypeGen())
	collectStream(t, NewStreamWriter(src.Heap, head, Options{}, 0, cache))
	sw := NewStreamWriter(src.Heap, head, Options{}, 0, cache)
	chunks := collectStream(t, sw)

	// Blob stamped under a later epoch (as if the sender churned
	// between the stream and the NACK answer).
	cache.Sync(99)
	sw2 := NewStreamWriter(src.Heap, head, Options{}, 0, cache)
	collectStream(t, sw2)
	staleBlob, _ := sw2.TableBlob(nil)

	dst := newVM()
	linkedArrayTypes(dst)
	sr, err := feedStream(dst, NewTableMirror(), chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.InstallTable(staleBlob); err == nil {
		t.Fatal("stale-epoch blob accepted")
	}
}

// TestQuickStreamRandomChunks is the streaming property test: random
// graphs, random chunk targets, random wire fragmentation — every
// combination must round-trip exactly and match the v1 payload.
func TestQuickStreamRandomChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 25; iter++ {
		n := 1 + rng.Intn(30)
		payload := rng.Intn(24)
		target := 32 + rng.Intn(4096)
		mode := VisitedMode(rng.Intn(2))

		src := newVM()
		mt := linkedArrayTypes(src)
		head := buildList(src, mt, n, payload)
		sw := NewStreamWriter(src.Heap, head, Options{Visited: mode}, target, nil)
		src.AddRootProvider(sw)
		chunks := collectStream(t, sw)
		src.RemoveRootProvider(sw)

		dst := newVM()
		dmt := linkedArrayTypes(dst)
		sr, err := feedStream(dst, nil, chunks, 1+rng.Intn(512))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		out, err := sr.Finish()
		if err != nil {
			t.Fatalf("iter %d: Finish: %v", iter, err)
		}
		h := dst.Heap
		count := 0
		for node := out; node != vm.NullRef; node = h.GetRef(node, dmt.FieldByName("next")) {
			if got := int32(uint32(h.GetScalar(node, dmt.FieldByName("id")))); got != int32(count) {
				t.Fatalf("iter %d node %d id %d", iter, count, got)
			}
			arr := h.GetRef(node, dmt.FieldByName("array"))
			vals := h.Int32Slice(arr)
			if len(vals) != payload {
				t.Fatalf("iter %d node %d payload %d", iter, count, len(vals))
			}
			for j, val := range vals {
				if val != int32(count*1000+j) {
					t.Fatalf("iter %d node %d payload[%d]=%d", iter, count, j, val)
				}
			}
			count++
		}
		if count != n {
			t.Fatalf("iter %d: %d nodes, want %d", iter, count, n)
		}
	}
}

// TestStreamNeverPanics mirrors the v1 robustness test for the v2
// entry point: garbage and mutations error, never panic.
func TestStreamNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4041))
	src := newVM()
	mt := linkedArrayTypes(src)
	head := buildList(src, mt, 5, 3)
	valid, err := SerializeStream(src.Heap, head, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tryOne := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("stream deserialize panicked on %d bytes: %v", len(data), r)
			}
		}()
		dst := newVM()
		linkedArrayTypes(dst)
		_, _ = DeserializeStream(dst, data)
	}
	for i := 0; i < 200; i++ {
		data := make([]byte, rng.Intn(300))
		rng.Read(data)
		tryOne(data)
	}
	for i := 0; i < 400; i++ {
		data := append([]byte(nil), valid...)
		switch rng.Intn(3) {
		case 0:
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		case 1:
			data = data[:rng.Intn(len(data)+1)]
		case 2:
			at := rng.Intn(len(data))
			data = append(data[:at], append([]byte{byte(rng.Intn(256))}, data[at:]...)...)
		}
		tryOne(data)
	}
}
