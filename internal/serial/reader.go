package serial

import (
	"encoding/binary"
	"fmt"

	"motor/internal/vm"
)

// The reader: parses a representation, resolves the type table
// against the receiving VM's registry, allocates the objects, and
// rewires local ids back into references. The record machinery is
// shared between the v1 one-shot Deserialize and the v2 StreamReader:
// allocRecord consumes one record — validating the payload's presence
// before sizing any managed allocation from wire-claimed lengths,
// then filling simple payloads and scalar fields immediately — and
// fillRefs runs once at the end, rewiring only reference slots (ids
// can point forward, so references cannot be resolved inline).

type wireField struct {
	name          string
	kind          vm.Kind
	transportable bool
	local         *vm.FieldDesc
}

type wireType struct {
	isArray bool
	hasRefs bool // array-of-refs, or class with at least one ref field
	mt      *vm.MethodTable
	fields  []wireField // classes only
}

type reader struct {
	v     *vm.VM
	data  []byte
	pos   int
	limit int // parsing bound: len(data), or the current data run's end

	types []wireType

	// refs holds every allocated object; registered as a GC root
	// provider while deserialization runs (allocation can collect).
	refs    []vm.Ref
	records []objRecord
}

// VisitRoots implements vm.RootProvider.
func (r *reader) VisitRoots(visit func(vm.Ref) vm.Ref) {
	for i, ref := range r.refs {
		if ref != vm.NullRef {
			r.refs[i] = visit(ref)
		}
	}
}

func (r *reader) fail(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{ErrFormat}, args...)...)
}

func (r *reader) need(n int) error {
	if r.pos+n > r.limit {
		return r.fail("truncated at %d (+%d of %d)", r.pos, n, r.limit)
	}
	return nil
}

func (r *reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) scalar(k vm.Kind) (uint64, error) {
	n := k.Size()
	if err := r.need(n); err != nil {
		return 0, err
	}
	var b [8]byte
	copy(b[:], r.data[r.pos:r.pos+n])
	r.pos += n
	// Sign-extension is irrelevant here: the bits are stored back
	// with the same kind.
	return binary.LittleEndian.Uint64(b[:]), nil
}

// parseOneType consumes one type-table entry at the cursor and
// resolves it against the local registry.
func (r *reader) parseOneType() (wireType, error) {
	entryKind, err := r.u8()
	if err != nil {
		return wireType{}, err
	}
	switch entryKind {
	case kindArrayEntry:
		ek, err := r.u8()
		if err != nil {
			return wireType{}, err
		}
		rank, err := r.u8()
		if err != nil {
			return wireType{}, err
		}
		elemName, err := r.str()
		if err != nil {
			return wireType{}, err
		}
		var elemMT *vm.MethodTable
		if vm.Kind(ek) == vm.KindRef && elemName != "" {
			mt, err := r.v.ResolveTypeName(elemName)
			if err != nil {
				return wireType{}, fmt.Errorf("%w: %v", ErrTypeless, err)
			}
			elemMT = mt
		}
		return wireType{
			isArray: true,
			hasRefs: vm.Kind(ek) == vm.KindRef,
			mt:      r.v.ArrayType(vm.Kind(ek), elemMT, int(rank)),
		}, nil
	case kindClassEntry:
		name, err := r.str()
		if err != nil {
			return wireType{}, err
		}
		mt, ok := r.v.TypeByName(name)
		if !ok || mt.Kind != vm.TKClass {
			return wireType{}, fmt.Errorf("%w: class %q", ErrTypeless, name)
		}
		nf, err := r.u16()
		if err != nil {
			return wireType{}, err
		}
		wt := wireType{mt: mt, fields: make([]wireField, nf)}
		for j := 0; j < int(nf); j++ {
			fname, err := r.str()
			if err != nil {
				return wireType{}, err
			}
			fk, err := r.u8()
			if err != nil {
				return wireType{}, err
			}
			fl, err := r.u8()
			if err != nil {
				return wireType{}, err
			}
			local := mt.FieldByName(fname)
			if local == nil || local.Kind() != vm.Kind(fk) {
				return wireType{}, fmt.Errorf("%w: field %s.%s", ErrShape, name, fname)
			}
			if vm.Kind(fk) == vm.KindRef {
				wt.hasRefs = true
			}
			wt.fields[j] = wireField{name: fname, kind: vm.Kind(fk), transportable: fl&1 != 0, local: local}
		}
		return wt, nil
	default:
		return wireType{}, r.fail("type entry kind %d", entryKind)
	}
}

// parseTypeTable resolves the v1 inline type table.
func (r *reader) parseTypeTable() error {
	count, err := r.u16()
	if err != nil {
		return err
	}
	r.types = make([]wireType, count)
	for i := 0; i < int(count); i++ {
		wt, err := r.parseOneType()
		if err != nil {
			return err
		}
		r.types[i] = wt
	}
	return nil
}

// parseEntry resolves one standalone (length-delimited) type entry —
// the v2 table-section / table-blob form.
func parseEntry(v *vm.VM, raw []byte) (wireType, error) {
	tr := &reader{v: v, data: raw, limit: len(raw)}
	wt, err := tr.parseOneType()
	if err != nil {
		return wireType{}, err
	}
	if tr.pos != len(raw) {
		return wireType{}, tr.fail("trailing bytes in type entry")
	}
	return wt, nil
}

// objRecord remembers where an object's payload starts so fillRefs can
// revisit the reference slots.
type objRecord struct {
	wt     *wireType
	length int
	dims   []int
	at     int // data position of the field/element payload
}

// allocRecord consumes the record at the cursor: validates, allocates
// the object, fills simple payloads and scalar fields, and records the
// payload position for the reference pass. The payload must be fully
// present (within limit) before any managed allocation is sized from
// the wire-claimed length.
func (r *reader) allocRecord() error {
	h := r.v.Heap
	ti, err := r.u16()
	if err != nil {
		return err
	}
	if int(ti) >= len(r.types) {
		return r.fail("type index %d", ti)
	}
	wt := &r.types[ti]
	rec := objRecord{wt: wt}
	if wt.isArray {
		n, err := r.u32()
		if err != nil {
			return err
		}
		rec.length = int(n)
		mt := wt.mt
		if mt.Elem == vm.KindRef {
			if err := r.need(4 * rec.length); err != nil {
				return err
			}
		} else {
			extra := 0
			if mt.Rank > 1 {
				extra = 4 * mt.Rank
			}
			if err := r.need(extra + rec.length*mt.ElemSize()); err != nil {
				return err
			}
		}
		var ref vm.Ref
		if mt.Rank > 1 {
			dims := make([]int, mt.Rank)
			total := 1
			for d := range dims {
				dv, err := r.u32()
				if err != nil {
					return err
				}
				dims[d] = int(dv)
				total *= int(dv)
			}
			if total != rec.length {
				return r.fail("dims %v != length %d", dims, rec.length)
			}
			rec.dims = dims
			ref, err = h.AllocMultiDim(mt, dims)
		} else {
			ref, err = h.AllocArray(mt, rec.length)
		}
		if err != nil {
			return err
		}
		r.refs = append(r.refs, ref)
		rec.at = r.pos
		if mt.Elem == vm.KindRef {
			r.pos += 4 * rec.length // ids rewired by fillRefs
		} else {
			sz := rec.length * mt.ElemSize()
			copy(h.DataBytes(ref), r.data[rec.at:rec.at+sz])
			r.pos += sz
		}
	} else {
		ref, err := h.AllocClass(wt.mt)
		if err != nil {
			return err
		}
		r.refs = append(r.refs, ref)
		rec.at = r.pos
		for j := range wt.fields {
			f := &wt.fields[j]
			if f.kind == vm.KindRef {
				if err := r.need(4); err != nil {
					return err
				}
				r.pos += 4 // id rewired by fillRefs
				continue
			}
			bits, err := r.scalar(f.kind)
			if err != nil {
				return err
			}
			h.SetScalar(ref, f.local, bits)
		}
	}
	r.records = append(r.records, rec)
	return nil
}

// resolve maps a wire-local id to the allocated reference.
func (r *reader) resolve(id uint32) (vm.Ref, error) {
	if id == 0 {
		return vm.NullRef, nil
	}
	if int(id) > len(r.refs) {
		return vm.NullRef, r.fail("object id %d of %d", id, len(r.refs))
	}
	return r.refs[id-1], nil
}

// fillRefs is the reference pass: every record's reference slots are
// rewired from wire-local ids to heap references. Runs after all
// records are allocated, because ids can point forward.
func (r *reader) fillRefs() error {
	h := r.v.Heap
	r.limit = len(r.data)
	for i := range r.records {
		rec := &r.records[i]
		if !rec.wt.hasRefs {
			continue
		}
		r.pos = rec.at
		ref := r.refs[i]
		if rec.wt.isArray {
			for e := 0; e < rec.length; e++ {
				id, err := r.u32()
				if err != nil {
					return err
				}
				er, err := r.resolve(id)
				if err != nil {
					return err
				}
				h.SetElemRef(ref, e, er)
			}
			continue
		}
		for j := range rec.wt.fields {
			f := &rec.wt.fields[j]
			if f.kind == vm.KindRef {
				id, err := r.u32()
				if err != nil {
					return err
				}
				fr, err := r.resolve(id)
				if err != nil {
					return err
				}
				h.SetRef(ref, f.local, fr)
				continue
			}
			r.pos += f.kind.Size()
		}
	}
	return nil
}

// Deserialize reconstructs the object tree from a v1 representation
// and returns the root reference.
func Deserialize(v *vm.VM, data []byte) (vm.Ref, error) {
	r := &reader{v: v, data: data, limit: len(data)}
	m, err := r.u32()
	if err != nil {
		return vm.NullRef, err
	}
	if m != magic {
		return vm.NullRef, r.fail("bad magic %#x", m)
	}
	ver, err := r.u8()
	if err != nil {
		return vm.NullRef, err
	}
	if ver != version {
		return vm.NullRef, r.fail("version %d", ver)
	}
	r.pos += 3 // pad
	rootID, err := r.u32()
	if err != nil {
		return vm.NullRef, err
	}
	objCount, err := r.u32()
	if err != nil {
		return vm.NullRef, err
	}
	// Plausibility: every object record needs at least a 2-byte type
	// index, so the count cannot exceed the remaining input. This
	// bounds allocation against hostile or corrupt representations.
	if int64(objCount) > int64(len(r.data)) {
		return vm.NullRef, r.fail("object count %d exceeds input size %d", objCount, len(r.data))
	}
	if err := r.parseTypeTable(); err != nil {
		return vm.NullRef, err
	}

	v.AddRootProvider(r)
	defer v.RemoveRootProvider(r)

	r.refs = make([]vm.Ref, 0, objCount)
	r.records = make([]objRecord, 0, objCount)
	for i := 0; i < int(objCount); i++ {
		if err := r.allocRecord(); err != nil {
			return vm.NullRef, err
		}
	}
	if err := r.fillRefs(); err != nil {
		return vm.NullRef, err
	}
	return r.resolve(rootID)
}
