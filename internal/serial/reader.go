package serial

import (
	"encoding/binary"
	"fmt"

	"motor/internal/vm"
)

// The reader: parses a representation, resolves the type table
// against the receiving VM's registry, allocates the objects, and
// rewires local ids back into references.

type wireField struct {
	name          string
	kind          vm.Kind
	transportable bool
	local         *vm.FieldDesc
}

type wireType struct {
	isArray bool
	mt      *vm.MethodTable
	fields  []wireField // classes only
}

type reader struct {
	v    *vm.VM
	data []byte
	pos  int

	types []wireType

	// refs holds every allocated object; registered as a GC root
	// provider while deserialization runs (allocation can collect).
	refs []vm.Ref
}

// VisitRoots implements vm.RootProvider.
func (r *reader) VisitRoots(visit func(vm.Ref) vm.Ref) {
	for i, ref := range r.refs {
		if ref != vm.NullRef {
			r.refs[i] = visit(ref)
		}
	}
}

func (r *reader) fail(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{ErrFormat}, args...)...)
}

func (r *reader) need(n int) error {
	if r.pos+n > len(r.data) {
		return r.fail("truncated at %d (+%d of %d)", r.pos, n, len(r.data))
	}
	return nil
}

func (r *reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) scalar(k vm.Kind) (uint64, error) {
	n := k.Size()
	if err := r.need(n); err != nil {
		return 0, err
	}
	var b [8]byte
	copy(b[:], r.data[r.pos:r.pos+n])
	r.pos += n
	// Sign-extension is irrelevant here: the bits are stored back
	// with the same kind.
	return binary.LittleEndian.Uint64(b[:]), nil
}

// parseTypeTable resolves every wire type against the local registry.
func (r *reader) parseTypeTable() error {
	count, err := r.u16()
	if err != nil {
		return err
	}
	r.types = make([]wireType, count)
	for i := 0; i < int(count); i++ {
		entryKind, err := r.u8()
		if err != nil {
			return err
		}
		switch entryKind {
		case kindArrayEntry:
			ek, err := r.u8()
			if err != nil {
				return err
			}
			rank, err := r.u8()
			if err != nil {
				return err
			}
			elemName, err := r.str()
			if err != nil {
				return err
			}
			var elemMT *vm.MethodTable
			if vm.Kind(ek) == vm.KindRef && elemName != "" {
				mt, err := r.v.ResolveTypeName(elemName)
				if err != nil {
					return fmt.Errorf("%w: %v", ErrTypeless, err)
				}
				elemMT = mt
			}
			r.types[i] = wireType{isArray: true, mt: r.v.ArrayType(vm.Kind(ek), elemMT, int(rank))}
		case kindClassEntry:
			name, err := r.str()
			if err != nil {
				return err
			}
			mt, ok := r.v.TypeByName(name)
			if !ok || mt.Kind != vm.TKClass {
				return fmt.Errorf("%w: class %q", ErrTypeless, name)
			}
			nf, err := r.u16()
			if err != nil {
				return err
			}
			wt := wireType{mt: mt, fields: make([]wireField, nf)}
			for j := 0; j < int(nf); j++ {
				fname, err := r.str()
				if err != nil {
					return err
				}
				fk, err := r.u8()
				if err != nil {
					return err
				}
				fl, err := r.u8()
				if err != nil {
					return err
				}
				local := mt.FieldByName(fname)
				if local == nil || local.Kind() != vm.Kind(fk) {
					return fmt.Errorf("%w: field %s.%s", ErrShape, name, fname)
				}
				wt.fields[j] = wireField{name: fname, kind: vm.Kind(fk), transportable: fl&1 != 0, local: local}
			}
			r.types[i] = wt
		default:
			return r.fail("type entry kind %d", entryKind)
		}
	}
	return nil
}

// objRecord remembers where an object's payload starts for pass 2.
type objRecord struct {
	wt     *wireType
	length int
	dims   []int
	at     int // data position of the field/element payload
}

// Deserialize reconstructs the object tree from a representation and
// returns the root reference.
func Deserialize(v *vm.VM, data []byte) (vm.Ref, error) {
	r := &reader{v: v, data: data}
	m, err := r.u32()
	if err != nil {
		return vm.NullRef, err
	}
	if m != magic {
		return vm.NullRef, r.fail("bad magic %#x", m)
	}
	ver, err := r.u8()
	if err != nil {
		return vm.NullRef, err
	}
	if ver != version {
		return vm.NullRef, r.fail("version %d", ver)
	}
	r.pos += 3 // pad
	rootID, err := r.u32()
	if err != nil {
		return vm.NullRef, err
	}
	objCount, err := r.u32()
	if err != nil {
		return vm.NullRef, err
	}
	// Plausibility: every object record needs at least a 2-byte type
	// index, so the count cannot exceed the remaining input. This
	// bounds allocation against hostile or corrupt representations.
	if int64(objCount) > int64(len(r.data)) {
		return vm.NullRef, r.fail("object count %d exceeds input size %d", objCount, len(r.data))
	}
	if err := r.parseTypeTable(); err != nil {
		return vm.NullRef, err
	}

	// Pass 1: walk records, allocate every object.
	v.AddRootProvider(r)
	defer v.RemoveRootProvider(r)

	records := make([]objRecord, objCount)
	r.refs = make([]vm.Ref, objCount)
	h := v.Heap
	for i := 0; i < int(objCount); i++ {
		ti, err := r.u16()
		if err != nil {
			return vm.NullRef, err
		}
		if int(ti) >= len(r.types) {
			return vm.NullRef, r.fail("type index %d", ti)
		}
		wt := &r.types[ti]
		rec := objRecord{wt: wt}
		if wt.isArray {
			n, err := r.u32()
			if err != nil {
				return vm.NullRef, err
			}
			rec.length = int(n)
			mt := wt.mt
			// The payload must actually be present before any managed
			// allocation is sized from the wire-claimed length.
			if mt.Elem == vm.KindRef {
				if err := r.need(4 * rec.length); err != nil {
					return vm.NullRef, err
				}
			} else {
				extra := 0
				if mt.Rank > 1 {
					extra = 4 * mt.Rank
				}
				if err := r.need(extra + rec.length*mt.ElemSize()); err != nil {
					return vm.NullRef, err
				}
			}
			var ref vm.Ref
			if mt.Rank > 1 {
				dims := make([]int, mt.Rank)
				total := 1
				for d := range dims {
					dv, err := r.u32()
					if err != nil {
						return vm.NullRef, err
					}
					dims[d] = int(dv)
					total *= int(dv)
				}
				if total != rec.length {
					return vm.NullRef, r.fail("dims %v != length %d", dims, rec.length)
				}
				rec.dims = dims
				ref, err = h.AllocMultiDim(mt, dims)
			} else {
				ref, err = h.AllocArray(mt, rec.length)
			}
			if err != nil {
				return vm.NullRef, err
			}
			r.refs[i] = ref
			rec.at = r.pos
			// Skip the payload.
			if mt.Elem == vm.KindRef {
				if err := r.need(4 * rec.length); err != nil {
					return vm.NullRef, err
				}
				r.pos += 4 * rec.length
			} else {
				sz := rec.length * mt.ElemSize()
				if err := r.need(sz); err != nil {
					return vm.NullRef, err
				}
				r.pos += sz
			}
		} else {
			ref, err := h.AllocClass(wt.mt)
			if err != nil {
				return vm.NullRef, err
			}
			r.refs[i] = ref
			rec.at = r.pos
			for j := range wt.fields {
				f := &wt.fields[j]
				sz := f.kind.Size()
				if f.kind == vm.KindRef {
					sz = 4
				}
				if err := r.need(sz); err != nil {
					return vm.NullRef, err
				}
				r.pos += sz
			}
		}
		records[i] = rec
	}

	// Pass 2: fill payloads, rewiring local ids into references.
	resolve := func(id uint32) (vm.Ref, error) {
		if id == 0 {
			return vm.NullRef, nil
		}
		if int(id) > len(r.refs) {
			return vm.NullRef, r.fail("object id %d of %d", id, len(r.refs))
		}
		return r.refs[id-1], nil
	}
	for i := range records {
		rec := &records[i]
		r.pos = rec.at
		ref := r.refs[i]
		if rec.wt.isArray {
			mt := rec.wt.mt
			if mt.Elem == vm.KindRef {
				for e := 0; e < rec.length; e++ {
					id, err := r.u32()
					if err != nil {
						return vm.NullRef, err
					}
					er, err := resolve(id)
					if err != nil {
						return vm.NullRef, err
					}
					h.SetElemRef(ref, e, er)
				}
			} else {
				sz := rec.length * mt.ElemSize()
				copy(h.DataBytes(ref), r.data[r.pos:r.pos+sz])
			}
			continue
		}
		for j := range rec.wt.fields {
			f := &rec.wt.fields[j]
			if f.kind == vm.KindRef {
				id, err := r.u32()
				if err != nil {
					return vm.NullRef, err
				}
				fr, err := resolve(id)
				if err != nil {
					return vm.NullRef, err
				}
				h.SetRef(ref, f.local, fr)
				continue
			}
			bits, err := r.scalar(f.kind)
			if err != nil {
				return vm.NullRef, err
			}
			h.SetScalar(ref, f.local, bits)
		}
	}
	return resolve(rootID)
}
