package serial

import (
	"fmt"
	"math/rand"
	"testing"

	"motor/internal/vm"
)

// TestQuickRandomClassShapes generates classes with random scalar
// field shapes, fills instances with random values, and verifies
// exact round trips — the serializer must handle every kind and
// alignment combination.
func TestQuickRandomClassShapes(t *testing.T) {
	kinds := []vm.Kind{
		vm.KindBool, vm.KindInt8, vm.KindUint8, vm.KindInt16, vm.KindUint16,
		vm.KindChar, vm.KindInt32, vm.KindUint32, vm.KindInt64, vm.KindUint64,
		vm.KindFloat32, vm.KindFloat64,
	}
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 30; iter++ {
		src := newVM()
		dst := newVM()
		nf := 1 + rng.Intn(10)
		specs := make([]vm.FieldSpec, nf)
		for i := range specs {
			specs[i] = vm.FieldSpec{Name: fmt.Sprintf("f%d", i), Kind: kinds[rng.Intn(len(kinds))]}
		}
		name := fmt.Sprintf("Shape%d", iter)
		smt, err := src.NewClass(name, nil, specs)
		if err != nil {
			t.Fatal(err)
		}
		dmt, err := dst.NewClass(name, nil, specs)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := src.Heap.AllocClass(smt)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]uint64, nf)
		for i := range specs {
			f := smt.FieldByName(specs[i].Name)
			// Random bits truncated to the field width by the store.
			bits := rng.Uint64()
			src.Heap.SetScalar(obj, f, bits)
			want[i] = src.Heap.GetScalar(obj, f) // store-then-load normalizes
		}
		data, err := Serialize(src.Heap, obj, Options{Visited: VisitedMode(iter % 2)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Deserialize(dst, data)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := range specs {
			f := dmt.FieldByName(specs[i].Name)
			got := dst.Heap.GetScalar(out, f)
			if got != want[i] {
				t.Fatalf("iter %d field %s (%s): %#x != %#x", iter, specs[i].Name, specs[i].Kind, got, want[i])
			}
		}
	}
}

// TestQuickRandomArrays round-trips arrays of every simple kind with
// random lengths and contents.
func TestQuickRandomArrays(t *testing.T) {
	kinds := []vm.Kind{vm.KindUint8, vm.KindInt16, vm.KindInt32, vm.KindInt64, vm.KindFloat32, vm.KindFloat64}
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 40; iter++ {
		src := newVM()
		k := kinds[rng.Intn(len(kinds))]
		n := rng.Intn(200)
		at := src.ArrayType(k, nil, 1)
		arr, err := src.Heap.AllocArray(at, n)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]uint64, n)
		for i := 0; i < n; i++ {
			src.Heap.SetElem(arr, i, rng.Uint64())
			want[i] = src.Heap.GetElem(arr, i)
		}
		data, err := Serialize(src.Heap, arr, Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		dst := newVM()
		out, err := Deserialize(dst, data)
		if err != nil {
			t.Fatal(err)
		}
		if dst.Heap.Length(out) != n {
			t.Fatalf("iter %d: length %d want %d", iter, dst.Heap.Length(out), n)
		}
		for i := 0; i < n; i++ {
			if got := dst.Heap.GetElem(out, i); got != want[i] {
				t.Fatalf("iter %d (%s) elem %d: %#x != %#x", iter, k, i, got, want[i])
			}
		}
	}
}

func TestEmptyArrayRoundtrip(t *testing.T) {
	src := newVM()
	arr, _ := src.Heap.NewInt32Array(nil)
	data, err := Serialize(src.Heap, arr, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Heap.Length(out) != 0 {
		t.Errorf("length %d", dst.Heap.Length(out))
	}
}

func TestJaggedObjectArrays(t *testing.T) {
	// Array of int32[] arrays (Java-style arrays-of-arrays): the
	// elements are themselves objects and must travel.
	src := newVM()
	inner := src.ArrayType(vm.KindInt32, nil, 1)
	outerT := src.ArrayType(vm.KindRef, inner, 1)
	guard := &refGuard{refs: make([]vm.Ref, 1)}
	src.AddRootProvider(guard)
	outer, _ := src.Heap.AllocArray(outerT, 3)
	guard.refs[0] = outer
	for i := 0; i < 3; i++ {
		row, err := src.Heap.NewInt32Array(make([]int32, i+1))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= i; j++ {
			src.Heap.SetElem(row, j, uint64(uint32(int32(10*i+j))))
		}
		src.Heap.SetElemRef(guard.refs[0], i, row)
	}
	src.RemoveRootProvider(guard)
	outer = guard.refs[0]

	data, err := Serialize(src.Heap, outer, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		row := dst.Heap.GetElemRef(out, i)
		if dst.Heap.Length(row) != i+1 {
			t.Fatalf("row %d length %d", i, dst.Heap.Length(row))
		}
		if got := int32(uint32(dst.Heap.GetElem(row, i))); got != int32(10*i+i) {
			t.Errorf("row %d last elem %d", i, got)
		}
	}
}

func TestSerializeIntoRecycledBuffer(t *testing.T) {
	src := newVM()
	arr, _ := src.Heap.NewInt32Array([]int32{1, 2, 3})
	first, err := Serialize(src.Heap, arr, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the buffer: result must be identical.
	second, err := Serialize(src.Heap, arr, Options{}, first[:0])
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("recycled-buffer serialization differs")
	}
}

func TestObjectCountErrors(t *testing.T) {
	if _, err := ObjectCount(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := ObjectCount([]byte("shortandwrong")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSplitErrors(t *testing.T) {
	v := newVM()
	if _, err := SerializeSplit(v.Heap, vm.NullRef, 2, Options{}); err == nil {
		t.Error("null split accepted")
	}
	mt := linkedArrayTypes(v)
	node, _ := v.Heap.AllocClass(mt)
	if _, err := SerializeSplit(v.Heap, node, 2, Options{}); err == nil {
		t.Error("non-array split accepted")
	}
	arr, _ := v.Heap.NewInt32Array([]int32{1})
	if _, err := SerializeSplit(v.Heap, arr, 0, Options{}); err == nil {
		t.Error("zero parts accepted")
	}
	if _, err := DeserializeGather(v, nil); err == nil {
		t.Error("empty gather accepted")
	}
}

func TestSplitMorePartsThanElements(t *testing.T) {
	v := newVM()
	arr, _ := v.Heap.NewInt32Array([]int32{7, 8})
	parts, err := SerializeSplit(v.Heap, arr, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 {
		t.Fatalf("%d parts", len(parts))
	}
	dst := newVM()
	whole, err := DeserializeGather(dst, parts)
	if err != nil {
		t.Fatal(err)
	}
	got := dst.Heap.Int32Slice(whole)
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Errorf("gathered %v", got)
	}
}
