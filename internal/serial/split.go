package serial

import (
	"fmt"

	"motor/internal/vm"
)

// The split representation (paper §7.5): one array serialized as many
// standalone parts, each with its own type table and each
// individually deserializable — what makes the extended
// object-oriented scatter/gather operations possible. "For scatter
// operations the serialization mechanism automatically splits the
// array and flattens referenced objects. Conversely, for gather
// operations the deserialization mechanism takes many split
// representations and reconstructs them into a single array."

// PartRange computes the contiguous element range [lo,hi) of part p
// when splitting n elements into parts pieces (earlier parts take the
// remainder, matching MPI scatter conventions).
func PartRange(n, parts, p int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SerializeSplit flattens the array at arr into parts standalone
// representations. Each part's root is a synthetic sub-array holding
// that part's element range; referenced objects are flattened into
// the part that first references them.
func SerializeSplit(h *vm.Heap, arr vm.Ref, parts int, opts Options) ([][]byte, error) {
	if arr == vm.NullRef {
		return nil, fmt.Errorf("serial: split of null array")
	}
	mt := h.MT(arr)
	if mt.Kind != vm.TKArray || mt.Rank != 1 {
		return nil, fmt.Errorf("serial: split requires a rank-1 array, got %s", mt)
	}
	if parts < 1 {
		return nil, fmt.Errorf("serial: split into %d parts", parts)
	}
	n := h.Length(arr)
	out := make([][]byte, parts)
	for p := 0; p < parts; p++ {
		lo, hi := PartRange(n, parts, p)
		w := newWriter(h, opts)
		// Synthetic root: id 1 describes the sub-array; it has no
		// heap object, so it bypasses the visited set.
		rootID := w.nextID
		w.nextID++
		w.u16(w.typeIndex(mt))
		w.u32(uint32(hi - lo))
		if mt.Elem == vm.KindRef {
			for i := lo; i < hi; i++ {
				w.u32(w.assign(h.GetElemRef(arr, i)))
			}
		} else {
			s, _ := h.DataRange(arr)
			es := mt.ElemSize()
			w.objData = append(w.objData, h.Bytes(s+uint32(lo*es), s+uint32(hi*es))...)
		}
		for len(w.pending) > 0 {
			ref := w.pending[0]
			w.pending = w.pending[1:]
			if err := w.emit(ref); err != nil {
				return nil, err
			}
		}
		out[p] = w.finish(rootID, nil)
	}
	return out, nil
}

// DeserializeGather reconstructs the parts of a split representation
// into a single array on the receiving VM — the gather-side inverse
// of SerializeSplit. All parts must carry arrays of the same type.
// Parts may be in either wire format (v1 one-shot or v2 stream).
func DeserializeGather(v *vm.VM, parts [][]byte) (vm.Ref, error) {
	if len(parts) == 0 {
		return vm.NullRef, fmt.Errorf("serial: gather of zero parts")
	}
	// Deserialize each part, protecting the intermediate sub-arrays
	// from collection while later parts allocate.
	subs := make([]vm.Ref, len(parts))
	guard := &refGuard{refs: subs}
	v.AddRootProvider(guard)
	defer v.RemoveRootProvider(guard)

	for i, part := range parts {
		ref, err := DeserializeStream(v, part)
		if err != nil {
			return vm.NullRef, fmt.Errorf("serial: gather part %d: %w", i, err)
		}
		subs[i] = ref
	}
	return GatherRefs(v, subs)
}

// GatherRefs concatenates already-deserialized sub-arrays into a
// single array — the final step of any gather, shared by the buffered
// path above and the core's streaming OGather. All subs must be
// non-null arrays of the same type; they need not be rooted by the
// caller beyond the call itself.
func GatherRefs(v *vm.VM, subs []vm.Ref) (vm.Ref, error) {
	if len(subs) == 0 {
		return vm.NullRef, fmt.Errorf("serial: gather of zero parts")
	}
	guard := &refGuard{refs: subs}
	v.AddRootProvider(guard)
	defer v.RemoveRootProvider(guard)

	var mt *vm.MethodTable
	total := 0
	for i, ref := range subs {
		if ref == vm.NullRef {
			return vm.NullRef, fmt.Errorf("serial: gather part %d has null root", i)
		}
		pm := v.Heap.MT(ref)
		if pm.Kind != vm.TKArray {
			return vm.NullRef, fmt.Errorf("serial: gather part %d root is %s, not an array", i, pm)
		}
		if mt == nil {
			mt = pm
		} else if pm != mt {
			return vm.NullRef, fmt.Errorf("serial: gather parts disagree on type: %s vs %s", pm, mt)
		}
		total += v.Heap.Length(ref)
	}
	h := v.Heap
	result, err := h.AllocArray(mt, total)
	if err != nil {
		return vm.NullRef, err
	}
	// Protect result too: element copying does not allocate, but be
	// conservative about future changes.
	guard2 := &refGuard{refs: []vm.Ref{result}}
	v.AddRootProvider(guard2)
	defer v.RemoveRootProvider(guard2)
	result = guard2.refs[0]

	at := 0
	for _, sub := range subs {
		n := h.Length(sub)
		if mt.Elem == vm.KindRef {
			for i := 0; i < n; i++ {
				h.SetElemRef(result, at+i, h.GetElemRef(sub, i))
			}
		} else {
			es := mt.ElemSize()
			ds, _ := h.DataRange(result)
			ss, se := h.DataRange(sub)
			copy(h.Bytes(ds+uint32(at*es), ds+uint32((at+n)*es)), h.Bytes(ss, se))
		}
		at += n
	}
	return guard2.refs[0], nil
}

// refGuard is a removable root provider over a ref slice.
type refGuard struct {
	refs []vm.Ref
}

// VisitRoots implements vm.RootProvider.
func (g *refGuard) VisitRoots(visit func(vm.Ref) vm.Ref) {
	for i, r := range g.refs {
		if r != vm.NullRef {
			g.refs[i] = visit(r)
		}
	}
}
