package serial

import (
	"sync/atomic"

	"motor/internal/vm"
)

// The type-table cache: repeated sends of the same class shapes to the
// same peer transmit a 5-byte table reference instead of the full
// entry. The sender keeps a PeerCache per (comm, peer) assigning small
// ids to method tables; the receiver keeps a TableMirror per (comm,
// peer) holding the raw entries those ids resolve to.
//
// Correctness does not depend on the two sides staying in sync: a
// stream arriving with references the mirror cannot resolve makes the
// receiver NACK, and the sender answers with the self-describing
// TableBlob. Epochs handle invalidation — the sender bumps its epoch
// whenever its VM's type registry generation moves (Load rollback
// unregisters types), and a mirror that sees a new epoch drops
// everything it held.

// PeerCache is the sender side: ids assigned to method tables shipped
// to one peer, valid for the current epoch.
type PeerCache struct {
	// Epoch identifies the cache generation on the wire; starts at 1
	// (0 marks self-describing streams).
	Epoch uint32

	gen  uint64 // vm.TypeGen stamp the ids were built under
	ids  map[*vm.MethodTable]uint32
	next uint32
}

// NewPeerCache builds an empty cache stamped with the VM's current
// type-registry generation.
func NewPeerCache(gen uint64) *PeerCache {
	return &PeerCache{Epoch: 1, gen: gen, ids: make(map[*vm.MethodTable]uint32), next: 1}
}

// Sync flushes the cache when the type-registry generation has moved
// since the ids were assigned (a cached *MethodTable may have been
// unregistered; its pointer could even be reused). Returns true when
// it flushed, which advances the epoch so the receiver's mirror
// self-invalidates on the next stream.
func (c *PeerCache) Sync(gen uint64) bool {
	if gen == c.gen {
		return false
	}
	c.gen = gen
	c.Epoch++
	c.ids = make(map[*vm.MethodTable]uint32)
	c.next = 1
	return true
}

// Entries reports how many types the cache currently holds (tests).
func (c *PeerCache) Entries() int { return len(c.ids) }

func (c *PeerCache) assign(mt *vm.MethodTable) uint32 {
	id := c.next
	c.next++
	c.ids[mt] = id
	return id
}

// TableMirror is the receiver side: raw type entries keyed by the
// sender's cache ids, valid for one sender epoch. Entries are kept as
// wire bytes and re-resolved against the local registry per stream, so
// receiver-side registry churn (its own Load rollback) can never leave
// a stale *MethodTable in the mirror.
type TableMirror struct {
	Epoch   uint32
	entries map[uint32][]byte
}

// NewTableMirror builds an empty mirror.
func NewTableMirror() *TableMirror {
	return &TableMirror{entries: make(map[uint32][]byte)}
}

// Entries reports how many raw entries the mirror holds (tests).
func (m *TableMirror) Entries() int { return len(m.entries) }

// sync adopts the sender epoch, dropping everything held under a
// different one.
func (m *TableMirror) sync(epoch uint32) {
	if m.Epoch != epoch {
		m.Epoch = epoch
		m.entries = make(map[uint32][]byte)
	}
}

func (m *TableMirror) install(id uint32, raw []byte) { m.entries[id] = raw }

func (m *TableMirror) lookup(id uint32) ([]byte, bool) {
	raw, ok := m.entries[id]
	return raw, ok
}

// TTCacheStats counts type-table cache activity; the engine registers
// it as the "serial.ttcache" metrics group. All fields are bumped
// atomically (uint64 so the obs registry flattens them).
type TTCacheStats struct {
	Hits       uint64 // table sections sent as cache references
	Misses     uint64 // full table sections sent (first sight per epoch)
	Nacks      uint64 // receiver cache misses answered with a TableBlob
	Resets     uint64 // sender cache flushes (type registry churn)
	TableBytes uint64 // type-entry bytes actually transmitted
}

// Snapshot returns a race-safe copy of the counters.
func (s *TTCacheStats) Snapshot() TTCacheStats {
	return TTCacheStats{
		Hits:       atomic.LoadUint64(&s.Hits),
		Misses:     atomic.LoadUint64(&s.Misses),
		Nacks:      atomic.LoadUint64(&s.Nacks),
		Resets:     atomic.LoadUint64(&s.Resets),
		TableBytes: atomic.LoadUint64(&s.TableBytes),
	}
}
