package serial

import (
	"encoding/binary"
	"errors"
	"fmt"

	"motor/internal/vm"
)

// The v2 stream format: the same type-table + object-record content as
// the v1 representation, reorganized so it can be produced and
// consumed as a sequence of bounded chunks. A stream is
//
//	header   u32 magic "MSS2", u8 version=2, u8 flags, u16 reserved,
//	         u32 epoch, u32 rootID
//	section* one of
//	         secTableFull  u8 tag, u32 cacheID, u16 len, type entry
//	         secTableRef   u8 tag, u32 cacheID
//	         secData       u8 tag, u32 len, object records (v1 layout)
//	         secEnd        u8 tag, u32 objCount
//
// Invariants the writer maintains and the reader enforces:
//
//   - a type's table section precedes the first record that uses it,
//     and the k-th table section defines stream-local type index k
//     (records reference types by that index, exactly as in v1);
//   - an object record never straddles two data sections (a record
//     larger than the chunk target simply yields an oversized chunk);
//   - the stream ends with exactly one secEnd carrying the object
//     count, which the reader cross-checks against the records seen.
//
// Epoch 0 marks a self-describing stream (every table section is
// full); a nonzero epoch ties table references to the sender's
// per-peer cache generation (cache.go).
const (
	streamMagic   = 0x4D53_5332 // "MSS2"
	streamVersion = 2

	secTableFull = 1
	secTableRef  = 2
	secData      = 3
	secEnd       = 4

	streamHeaderSize = 16
)

// DefaultChunkTarget is the chunk size streaming serialization aims
// for when the caller does not specify one.
const DefaultChunkTarget = 256 << 10

// ErrStreamDone flags Next being called after the final chunk.
var ErrStreamDone = errors.New("serial: stream already complete")

// StreamWriter emits the representation of one object tree as a
// sequence of bounded chunks, so transport can overlap serialization
// with the wire and never materializes the whole representation.
//
// The writer holds live references between chunks (the pending queue
// and the visited structure); register it as a vm.RootProvider while
// the stream is being produced.
type StreamWriter struct {
	w      *writer
	rootID uint32
	epoch  uint32
	cache  *PeerCache
	target int

	started bool
	done    bool

	// rootRec holds a synthetic root record (split parts) staged at
	// construction, emitted at the front of the first chunk.
	rootRec []byte
	rootMT  *vm.MethodTable

	scratch []byte // type-entry staging

	// Per-stream accounting, read by the engine's ttcache counters.
	TableFulls int // full table sections emitted
	TableRefs  int // table sections replaced by cache references
	TableBytes int // type-entry bytes actually transmitted
	Chunks     int
}

// NewStreamWriter starts a stream for the tree rooted at root. target
// is the chunk size aimed for (<=0 selects DefaultChunkTarget). cache,
// when non-nil, enables table-reference emission against a per-peer
// type-table cache; nil produces a self-describing (epoch 0) stream.
func NewStreamWriter(h *vm.Heap, root vm.Ref, opts Options, target int, cache *PeerCache) *StreamWriter {
	if target <= 0 {
		target = DefaultChunkTarget
	}
	w := newWriter(h, opts)
	sw := &StreamWriter{w: w, target: target, cache: cache}
	if cache != nil {
		sw.epoch = cache.Epoch
	}
	sw.rootID = w.assign(root)
	return sw
}

// NewStreamWriterPart starts a stream whose root is a synthetic
// sub-array over arr's element range [lo,hi) — the streaming form of
// one SerializeSplit part (scatter). Parts are always self-describing.
func NewStreamWriterPart(h *vm.Heap, arr vm.Ref, lo, hi int, opts Options, target int) (*StreamWriter, error) {
	if arr == vm.NullRef {
		return nil, fmt.Errorf("serial: split of null array")
	}
	mt := h.MT(arr)
	if mt.Kind != vm.TKArray || mt.Rank != 1 {
		return nil, fmt.Errorf("serial: split requires a rank-1 array, got %s", mt)
	}
	n := h.Length(arr)
	if lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("serial: split range [%d,%d) outside array of %d", lo, hi, n)
	}
	if target <= 0 {
		target = DefaultChunkTarget
	}
	w := newWriter(h, opts)
	sw := &StreamWriter{w: w, target: target, rootMT: mt}
	// Synthetic root: id 1 describes the sub-array; it has no heap
	// object, so it bypasses the visited set. The record is staged now
	// (element payload copied, element objects scheduled) so the
	// source array need not survive until the first chunk.
	sw.rootID = w.nextID
	w.nextID++
	w.u16(w.typeIndex(mt))
	w.u32(uint32(hi - lo))
	if mt.Elem == vm.KindRef {
		for i := lo; i < hi; i++ {
			w.u32(w.assign(h.GetElemRef(arr, i)))
		}
	} else {
		s, _ := h.DataRange(arr)
		es := mt.ElemSize()
		w.objData = append(w.objData, h.Bytes(s+uint32(lo*es), s+uint32(hi*es))...)
	}
	sw.rootRec = w.objData
	w.objData = nil
	return sw, nil
}

// VisitRoots implements vm.RootProvider: the not-yet-emitted queue and
// the visited structure hold live (movable) references between chunks.
func (sw *StreamWriter) VisitRoots(visit func(vm.Ref) vm.Ref) {
	for i, ref := range sw.w.pending {
		sw.w.pending[i] = visit(ref)
	}
	sw.w.visited.visit(visit)
}

// Done reports whether the final chunk has been produced.
func (sw *StreamWriter) Done() bool { return sw.done }

// ObjectCount reports how many objects the stream has assigned so far
// (final only once Done).
func (sw *StreamWriter) ObjectCount() int { return int(sw.w.nextID - 1) }

// Epoch reports the stream's cache epoch (0 = self-describing).
func (sw *StreamWriter) Epoch() uint32 { return sw.epoch }

// Next appends the next chunk to buf (pass a recycled buffer with the
// chunk target's capacity; records are emitted directly into it, so
// there is no whole-representation staging copy). The chunk is
// complete and transportable as produced; after the chunk carrying the
// end section, Done reports true.
func (sw *StreamWriter) Next(buf []byte) ([]byte, error) {
	if sw.done {
		return nil, ErrStreamDone
	}
	out := buf
	if !sw.started {
		sw.started = true
		out = appendU32(out, streamMagic)
		out = append(out, streamVersion, 0, 0, 0)
		out = appendU32(out, sw.epoch)
		out = appendU32(out, sw.rootID)
	}
	w := sw.w
	// One open data section at a time; its length is patched when a
	// table section or the end section closes it.
	dataAt := -1
	openData := func() {
		if dataAt < 0 {
			dataAt = len(out)
			out = append(out, secData, 0, 0, 0, 0)
		}
	}
	closeData := func() {
		if dataAt >= 0 {
			binary.LittleEndian.PutUint32(out[dataAt+1:], uint32(len(out)-(dataAt+5)))
			dataAt = -1
		}
	}
	if sw.rootRec != nil {
		var err error
		out, err = sw.tableSection(out, sw.rootMT)
		if err != nil {
			return nil, err
		}
		openData()
		out = append(out, sw.rootRec...)
		sw.rootRec = nil
	}
	for len(w.pending) > 0 && len(out) < sw.target {
		ref := w.pending[0]
		w.pending = w.pending[1:]
		mt := w.heap.MT(ref)
		if _, known := w.typeIdx[mt]; !known {
			closeData()
			var err error
			out, err = sw.tableSection(out, mt)
			if err != nil {
				return nil, err
			}
		}
		openData()
		// Emit the record directly into the chunk.
		w.objData = out
		err := w.emit(ref)
		out = w.objData
		w.objData = nil
		if err != nil {
			return nil, err
		}
	}
	closeData()
	if len(w.pending) == 0 {
		out = append(out, secEnd)
		out = appendU32(out, w.nextID-1)
		sw.done = true
	}
	sw.Chunks++
	return out, nil
}

// tableSection emits the table section introducing mt, registering its
// stream-local index. With a cache, a previously shipped type costs
// five bytes (a reference) instead of the full entry.
func (sw *StreamWriter) tableSection(out []byte, mt *vm.MethodTable) ([]byte, error) {
	sw.w.typeIndex(mt) // stream-local index = section order
	if sw.cache != nil {
		if id, ok := sw.cache.ids[mt]; ok {
			sw.TableRefs++
			out = append(out, secTableRef)
			return appendU32(out, id), nil
		}
	}
	sw.scratch = appendTypeEntry(sw.scratch[:0], mt)
	if len(sw.scratch) > 0xFFFF {
		return nil, fmt.Errorf("%w: type entry of %d bytes", ErrFormat, len(sw.scratch))
	}
	id := uint32(len(sw.w.types)) // ordinal id when uncached
	if sw.cache != nil {
		id = sw.cache.assign(mt)
	}
	sw.TableFulls++
	sw.TableBytes += len(sw.scratch)
	out = append(out, secTableFull)
	out = appendU32(out, id)
	out = appendU16(out, uint16(len(sw.scratch)))
	return append(out, sw.scratch...), nil
}

// TableBlob appends the self-describing table fallback: every type
// this stream used, with its cache id — the payload a sender ships
// when the receiver NACKs unresolved table references.
//
//	u32 epoch, u32 count, count x (u32 cacheID, u16 len, type entry)
func (sw *StreamWriter) TableBlob(out []byte) ([]byte, error) {
	out = appendU32(out, sw.epoch)
	out = appendU32(out, uint32(len(sw.w.types)))
	for i, mt := range sw.w.types {
		id := uint32(i + 1)
		if sw.cache != nil {
			id = sw.cache.ids[mt]
		}
		sw.scratch = appendTypeEntry(sw.scratch[:0], mt)
		if len(sw.scratch) > 0xFFFF {
			return nil, fmt.Errorf("%w: type entry of %d bytes", ErrFormat, len(sw.scratch))
		}
		out = appendU32(out, id)
		out = appendU16(out, uint16(len(sw.scratch)))
		out = append(out, sw.scratch...)
	}
	return out, nil
}

// SerializeStream produces the whole v2 stream into one buffer (the
// one-shot form; transport uses the chunked writer directly).
func SerializeStream(h *vm.Heap, root vm.Ref, opts Options, out []byte) ([]byte, error) {
	sw := NewStreamWriter(h, root, opts, 0, nil)
	for !sw.Done() {
		var err error
		out, err = sw.Next(out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
