package serial

import (
	"encoding/binary"
	"fmt"

	"motor/internal/vm"
)

// StreamReader consumes a v2 stream incrementally: transport appends
// chunk bytes with Grow/Commit, and the reader scans sections and
// parses (allocates + fills) object records as soon as their bytes are
// complete — so deserialization overlaps the wire just like the
// writer side. Reference slots are rewired at Finish, since ids can
// point forward across chunks.
//
// When a table reference cannot be resolved against the mirror the
// reader stalls record parsing (sections are still scanned, so the
// stream always drains); the caller NACKs the sender, feeds the
// TableBlob to InstallTable, and Finish completes the parse.
//
// Register the reader as a vm.RootProvider while it runs: record
// parsing allocates, and the already-allocated objects live in refs.
type StreamReader struct {
	rd     reader
	mirror *TableMirror

	scan      int // section-scan cursor into rd.data
	gotHeader bool
	epoch     uint32
	rootID    uint32
	ended     bool
	endCount  uint32
	sawRef    bool

	meta       []streamTypeMeta // parallel to rd.types
	unresolved int

	runs   [][2]int // completed data-section payload ranges
	curRun int
}

type streamTypeMeta struct {
	id uint32 // cache id (ordinal when self-describing)
	ok bool   // resolved against the local registry
}

// NewStreamReader builds a reader accumulating into buf (pass a
// recycled zero-length buffer; it grows as needed — reclaim it with
// Buffer after Finish). mirror may be nil for self-describing streams;
// a stream that then carries table references fails at Finish.
func NewStreamReader(v *vm.VM, mirror *TableMirror, buf []byte) *StreamReader {
	if mirror == nil {
		mirror = NewTableMirror()
	}
	return &StreamReader{rd: reader{v: v, data: buf[:0]}, mirror: mirror}
}

// VisitRoots implements vm.RootProvider.
func (sr *StreamReader) VisitRoots(visit func(vm.Ref) vm.Ref) { sr.rd.VisitRoots(visit) }

// Grow returns a length-n slice at the accumulation buffer's tail for
// transport to receive the next chunk into directly (no staging copy);
// call Commit with the byte count actually received.
func (sr *StreamReader) Grow(n int) []byte {
	d := sr.rd.data
	need := len(d) + n
	if cap(d) < need {
		nc := 2 * cap(d)
		if nc < need {
			nc = need
		}
		if nc < 1024 {
			nc = 1024
		}
		nd := make([]byte, len(d), nc)
		copy(nd, d)
		sr.rd.data = nd
		d = nd
	}
	return d[len(d):need]
}

// Commit appends n received bytes (previously handed out by Grow) to
// the stream and advances scanning and record parsing as far as the
// committed bytes allow.
func (sr *StreamReader) Commit(n int) error {
	sr.rd.data = sr.rd.data[:len(sr.rd.data)+n]
	return sr.drain()
}

// Buffer returns the accumulation buffer so the caller can recycle it
// once the reader is finished.
func (sr *StreamReader) Buffer() []byte { return sr.rd.data }

// Ended reports whether the end section has been scanned — the stream
// is complete on the wire and no further chunks should be expected.
func (sr *StreamReader) Ended() bool { return sr.ended }

// SawRefs reports whether the stream used any table references (the
// sender awaits an ACK/NACK exactly when it emitted one).
func (sr *StreamReader) SawRefs() bool { return sr.sawRef }

// MissingTables reports how many table references remain unresolved.
func (sr *StreamReader) MissingTables() int { return sr.unresolved }

// drain scans complete sections out of the committed bytes, then
// parses records unless a table reference is unresolved. An incomplete
// trailing section simply waits for more bytes (Finish turns that into
// a truncation error if the stream ends there).
func (sr *StreamReader) drain() error {
	d := sr.rd.data
	if !sr.gotHeader {
		if len(d)-sr.scan < streamHeaderSize {
			return nil
		}
		if m := binary.LittleEndian.Uint32(d[sr.scan:]); m != streamMagic {
			return sr.rd.fail("bad stream magic %#x", m)
		}
		if v := d[sr.scan+4]; v != streamVersion {
			return sr.rd.fail("stream version %d", v)
		}
		sr.epoch = binary.LittleEndian.Uint32(d[sr.scan+8:])
		sr.rootID = binary.LittleEndian.Uint32(d[sr.scan+12:])
		sr.scan += streamHeaderSize
		sr.gotHeader = true
		if sr.epoch != 0 {
			sr.mirror.sync(sr.epoch)
		}
	}
scan:
	for {
		rem := len(d) - sr.scan
		if sr.ended {
			if rem > 0 {
				return sr.rd.fail("%d trailing bytes after end section", rem)
			}
			break
		}
		if rem < 1 {
			break
		}
		switch d[sr.scan] {
		case secTableFull:
			if rem < 7 {
				break scan
			}
			id := binary.LittleEndian.Uint32(d[sr.scan+1:])
			elen := int(binary.LittleEndian.Uint16(d[sr.scan+5:]))
			if rem < 7+elen {
				break scan
			}
			raw := d[sr.scan+7 : sr.scan+7+elen]
			wt, err := parseEntry(sr.rd.v, raw)
			if err != nil {
				return err
			}
			sr.rd.types = append(sr.rd.types, wt)
			sr.meta = append(sr.meta, streamTypeMeta{id: id, ok: true})
			if sr.epoch != 0 && id != 0 {
				// The mirror outlives this stream's buffer: copy.
				sr.mirror.install(id, append([]byte(nil), raw...))
			}
			sr.scan += 7 + elen
		case secTableRef:
			if rem < 5 {
				break scan
			}
			if sr.epoch == 0 {
				return sr.rd.fail("table reference in self-describing stream")
			}
			id := binary.LittleEndian.Uint32(d[sr.scan+1:])
			sr.sawRef = true
			var wt wireType
			ok := false
			if raw, hit := sr.mirror.lookup(id); hit {
				var err error
				wt, err = parseEntry(sr.rd.v, raw)
				if err != nil {
					return err
				}
				ok = true
			} else {
				sr.unresolved++
			}
			sr.rd.types = append(sr.rd.types, wt)
			sr.meta = append(sr.meta, streamTypeMeta{id: id, ok: ok})
			sr.scan += 5
		case secData:
			if rem < 5 {
				break scan
			}
			dlen := binary.LittleEndian.Uint32(d[sr.scan+1:])
			if uint64(rem) < 5+uint64(dlen) {
				break scan
			}
			start := sr.scan + 5
			sr.runs = append(sr.runs, [2]int{start, start + int(dlen)})
			sr.scan = start + int(dlen)
		case secEnd:
			if rem < 5 {
				break scan
			}
			sr.endCount = binary.LittleEndian.Uint32(d[sr.scan+1:])
			sr.ended = true
			sr.scan += 5
		default:
			return sr.rd.fail("section tag %d", d[sr.scan])
		}
	}
	if sr.unresolved > 0 {
		return nil // stalled: keep draining the wire, parse at Finish
	}
	return sr.parseRuns()
}

// parseRuns consumes records out of every completed data section.
// Records never straddle sections, so each run must end exactly on a
// record boundary.
func (sr *StreamReader) parseRuns() error {
	for sr.curRun < len(sr.runs) {
		run := sr.runs[sr.curRun]
		if sr.rd.pos < run[0] {
			sr.rd.pos = run[0]
		}
		sr.rd.limit = run[1]
		for sr.rd.pos < run[1] {
			if err := sr.rd.allocRecord(); err != nil {
				return err
			}
		}
		sr.curRun++
	}
	return nil
}

// InstallTable feeds a sender's TableBlob (the NACK answer) into the
// mirror and resolves the stalled table references.
func (sr *StreamReader) InstallTable(blob []byte) error {
	br := &reader{v: sr.rd.v, data: blob, limit: len(blob)}
	epoch, err := br.u32()
	if err != nil {
		return err
	}
	if epoch != sr.epoch {
		return sr.rd.fail("table blob epoch %d != stream epoch %d", epoch, sr.epoch)
	}
	count, err := br.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < count; i++ {
		id, err := br.u32()
		if err != nil {
			return err
		}
		elen, err := br.u16()
		if err != nil {
			return err
		}
		if err := br.need(int(elen)); err != nil {
			return err
		}
		raw := append([]byte(nil), blob[br.pos:br.pos+int(elen)]...)
		br.pos += int(elen)
		sr.mirror.install(id, raw)
	}
	for i := range sr.meta {
		m := &sr.meta[i]
		if m.ok {
			continue
		}
		raw, hit := sr.mirror.lookup(m.id)
		if !hit {
			continue
		}
		wt, err := parseEntry(sr.rd.v, raw)
		if err != nil {
			return err
		}
		sr.rd.types[i] = wt
		m.ok = true
		sr.unresolved--
	}
	return nil
}

// Finish completes the stream: any stalled records are parsed, the
// record count is checked against the end section, and references are
// rewired. Returns the root.
func (sr *StreamReader) Finish() (vm.Ref, error) {
	if !sr.ended {
		return vm.NullRef, sr.rd.fail("stream truncated (no end section)")
	}
	if sr.unresolved > 0 {
		return vm.NullRef, fmt.Errorf("%w: %d unresolved table references", ErrTypeless, sr.unresolved)
	}
	if err := sr.parseRuns(); err != nil {
		return vm.NullRef, err
	}
	if uint32(len(sr.rd.refs)) != sr.endCount {
		return vm.NullRef, sr.rd.fail("object count %d != %d records", sr.endCount, len(sr.rd.refs))
	}
	if err := sr.rd.fillRefs(); err != nil {
		return vm.NullRef, err
	}
	return sr.rd.resolve(sr.rootID)
}

// DeserializeStream reconstructs an object tree from a complete
// representation in either format: v1 one-shot or v2 stream (the
// self-describing form; cached table references need a live mirror and
// go through StreamReader directly).
func DeserializeStream(v *vm.VM, data []byte) (vm.Ref, error) {
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) == magic {
		return Deserialize(v, data)
	}
	sr := NewStreamReader(v, nil, nil)
	copy(sr.Grow(len(data)), data)
	v.AddRootProvider(sr)
	defer v.RemoveRootProvider(sr)
	if err := sr.Commit(len(data)); err != nil {
		return vm.NullRef, err
	}
	return sr.Finish()
}
