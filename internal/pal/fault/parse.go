package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParsePlan parses the compact textual plan format used by command-
// line tools (see docs/FAULTS.md):
//
//	rule[,rule...]
//	rule = kind:op[:key=value...]
//
// where kind is one of refuse|reset|delay|short|drop|partition, op is
// one of dial|accept|read|write, and the optional keys are nth, count,
// prob, peer, bytes and delay (a Go duration). Example:
//
//	"refuse:dial:nth=1:count=2,reset:write:nth=5"
func ParsePlan(seed int64, spec string) (Plan, error) {
	plan := Plan{Seed: seed}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return plan, nil
	}
	for _, rs := range strings.Split(spec, ",") {
		r, err := ParseRule(rs)
		if err != nil {
			return Plan{}, err
		}
		plan.Rules = append(plan.Rules, r)
	}
	return plan, nil
}

// ParseRule parses one rule of the textual plan format.
func ParseRule(spec string) (Rule, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) < 2 {
		return Rule{}, fmt.Errorf("fault: rule %q: want kind:op[:key=value...]", spec)
	}
	var r Rule
	kind, err := parseKind(parts[0])
	if err != nil {
		return Rule{}, fmt.Errorf("fault: rule %q: %w", spec, err)
	}
	op, err := parseOp(parts[1])
	if err != nil {
		return Rule{}, fmt.Errorf("fault: rule %q: %w", spec, err)
	}
	r.Kind, r.Op = kind, op
	for _, kv := range parts[2:] {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return Rule{}, fmt.Errorf("fault: rule %q: option %q is not key=value", spec, kv)
		}
		switch key {
		case "nth":
			r.Nth, err = strconv.Atoi(val)
		case "count":
			r.Count, err = strconv.Atoi(val)
		case "bytes":
			r.Bytes, err = strconv.Atoi(val)
		case "prob":
			r.Prob, err = strconv.ParseFloat(val, 64)
		case "delay":
			r.Delay, err = time.ParseDuration(val)
		case "peer":
			r.Peer = val
		default:
			return Rule{}, fmt.Errorf("fault: rule %q: unknown option %q", spec, key)
		}
		if err != nil {
			return Rule{}, fmt.Errorf("fault: rule %q: option %q: %w", spec, kv, err)
		}
	}
	if r.Nth < 0 || r.Count < 0 || r.Bytes < 0 || r.Prob < 0 || r.Prob > 1 {
		return Rule{}, fmt.Errorf("fault: rule %q: out-of-range option", spec)
	}
	return r, nil
}

func parseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

func parseOp(s string) (Op, error) {
	for o, name := range opNames {
		if s == name {
			return Op(o), nil
		}
	}
	return 0, fmt.Errorf("unknown op %q", s)
}
