package fault

import (
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"syscall"
	"testing"
	"testing/quick"
	"time"

	"motor/internal/pal"
)

// TestPlanDeterminism is the reproducibility contract of the chaos
// suite: identical seed + plan + operation sequence must produce an
// identical fault sequence, whatever the plan and workload look like.
func TestPlanDeterminism(t *testing.T) {
	f := func(seed int64, ops []byte, nth, count uint8, prob uint16) bool {
		plan := Plan{Seed: seed, Rules: []Rule{
			{Op: OpWrite, Kind: KindReset, Nth: int(nth % 8), Count: int(count % 4)},
			{Op: OpRead, Kind: KindShort, Prob: float64(prob%1000) / 1000, Bytes: 3},
			{Op: OpDial, Kind: KindRefuse, Prob: 0.3, Peer: "p1"},
			{Op: OpWrite, Kind: KindDrop, Prob: 0.5, Bytes: 7},
			{Op: OpAccept, Kind: KindRefuse, Nth: 2},
		}}
		run := func() ([]Event, Stats) {
			in := newInjector(plan)
			for _, b := range ops {
				in.decide(Op(b%uint8(numOps)), fmt.Sprintf("p%d:900%d", b%3, b%2))
			}
			return in.snapshotEvents(), in.snapshotStats()
		}
		e1, s1 := run()
		e2, s2 := run()
		return reflect.DeepEqual(e1, e2) && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRuleTriggering(t *testing.T) {
	in := newInjector(Plan{Rules: []Rule{
		{Op: OpWrite, Kind: KindReset, Nth: 3},          // exactly the 3rd write
		{Op: OpRead, Kind: KindShort, Nth: 2, Count: 2}, // reads 2 and 3
	}})
	var writeFires, readFires []int
	for i := 1; i <= 6; i++ {
		if _, ok := in.decide(OpWrite, "a"); ok {
			writeFires = append(writeFires, i)
		}
		if _, ok := in.decide(OpRead, "a"); ok {
			readFires = append(readFires, i)
		}
	}
	if !reflect.DeepEqual(writeFires, []int{3}) {
		t.Errorf("write fires = %v, want [3]", writeFires)
	}
	if !reflect.DeepEqual(readFires, []int{2, 3}) {
		t.Errorf("read fires = %v, want [2 3]", readFires)
	}
	st := in.snapshotStats()
	if st.Total != 3 || st.Injected[KindReset] != 1 || st.Injected[KindShort] != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPeerMatching(t *testing.T) {
	in := newInjector(Plan{Rules: []Rule{
		{Op: OpDial, Kind: KindRefuse, Peer: "10.0.0.7"},
	}})
	if _, ok := in.decide(OpDial, "10.0.0.8:4000"); ok {
		t.Error("fired on wrong peer")
	}
	if _, ok := in.decide(OpDial, "10.0.0.7:4000"); !ok {
		t.Error("did not fire on matching peer")
	}
}

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan(42, "refuse:dial:nth=1:count=2,reset:write:nth=5:peer=x,delay:read:delay=3ms:prob=0.25,short:write:bytes=10")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: KindRefuse, Op: OpDial, Nth: 1, Count: 2},
		{Kind: KindReset, Op: OpWrite, Nth: 5, Peer: "x"},
		{Kind: KindDelay, Op: OpRead, Delay: 3 * time.Millisecond, Prob: 0.25},
		{Kind: KindShort, Op: OpWrite, Bytes: 10},
	}
	if plan.Seed != 42 || !reflect.DeepEqual(plan.Rules, want) {
		t.Errorf("parsed %+v", plan)
	}
	for _, bad := range []string{"reset", "reset:flush", "zap:write", "reset:write:nth", "reset:write:prob=2", "reset:write:x=1"} {
		if _, err := ParsePlan(0, bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
	if p, err := ParsePlan(7, "  "); err != nil || len(p.Rules) != 0 {
		t.Errorf("empty spec: %v %+v", err, p)
	}
}

// echoServer accepts one connection and echoes whatever arrives.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := pal.Default.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(conn, conn); conn.Close() }()
		}
	}()
	return ln
}

func TestDialRefuseThenRecover(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p := New(nil, Plan{Rules: []Rule{{Op: OpDial, Kind: KindRefuse, Nth: 1, Count: 2}}})
	for i := 0; i < 2; i++ {
		if _, err := p.Dial(ln.Addr().String(), time.Second); !errors.Is(err, syscall.ECONNREFUSED) {
			t.Fatalf("dial %d: %v, want ECONNREFUSED", i, err)
		}
	}
	conn, err := p.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("third dial: %v", err)
	}
	conn.Close()
	ev := p.Events()
	if len(ev) != 2 || ev[0].Kind != KindRefuse || ev[1].Occurrence != 2 {
		t.Errorf("events %v", ev)
	}
}

func TestWriteFaults(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p := New(nil, Plan{Rules: []Rule{
		{Op: OpWrite, Kind: KindShort, Nth: 1, Bytes: 2},
		{Op: OpWrite, Kind: KindReset, Nth: 2},
	}})
	conn, err := p.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	n, err := conn.Write([]byte("hello"))
	if n != 2 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if _, err := conn.Write([]byte("world")); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("reset write: %v", err)
	}
	// The reset closed the connection for real.
	if _, err := conn.Write([]byte("again")); err == nil {
		t.Fatal("write on reset connection succeeded")
	}
}

func TestPartitionRead(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p := New(nil, Plan{Rules: []Rule{{Op: OpRead, Kind: KindPartition, Delay: time.Millisecond}}})
	conn, err := p.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	_, err = conn.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("partitioned read: %v, want timeout net.Error", err)
	}
}
