// Package fault provides deterministic fault injection at the PAL
// seam. A fault.Platform wraps any pal.Platform and injects seeded,
// scriptable transport faults — refused or delayed dials, connection
// resets, short reads and writes, mid-stream drops, one-directional
// partitions — driven by a declarative Plan. Every decision the
// injector makes is a pure function of the plan, its seed, and the
// sequence of operations observed, so a failing chaos run is
// reproducible from its seed alone.
//
// The textual plan format accepted by ParsePlan, the semantics of
// each fault kind, and the transport-hardening behaviour the injector
// exercises are documented in docs/FAULTS.md.
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Op identifies the platform operation a rule applies to.
type Op uint8

// Fault-injectable operations.
const (
	OpDial Op = iota
	OpAccept
	OpRead
	OpWrite
	numOps
)

var opNames = [numOps]string{"dial", "accept", "read", "write"}

// String renders the operation name used by the textual plan format.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Kind identifies what the injected fault does.
type Kind uint8

// Fault kinds.
const (
	// KindRefuse fails the operation outright: a dial returns
	// connection-refused, an accepted connection is dropped
	// immediately, a read or write returns connection-reset.
	KindRefuse Kind = iota
	// KindReset closes the connection and returns a reset error —
	// the mid-stream "connection reset by peer" failure.
	KindReset
	// KindDelay stalls the operation for Rule.Delay before letting it
	// proceed (slow dials, slow reads, slow writes).
	KindDelay
	// KindShort truncates the operation: a read returns at most
	// Rule.Bytes bytes (no error), a write transmits only Rule.Bytes
	// bytes and returns a short-write error — leaving a partial frame
	// on the wire, the framing hazard the sock channel must poison.
	KindShort
	// KindDrop lets at most Rule.Bytes bytes through and then closes
	// the connection mid-operation.
	KindDrop
	// KindPartition black-holes one direction: reads behave as if no
	// data ever arrives (deadline timeouts), writes claim success but
	// transmit nothing.
	KindPartition
	numKinds
)

var kindNames = [numKinds]string{"refuse", "reset", "delay", "short", "drop", "partition"}

// String renders the kind name used by the textual plan format.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rule is one declarative fault trigger. A rule matches an operation
// by Op and (optionally) peer address; each match counts one
// occurrence. Triggering is controlled by Nth, Count and Prob:
//
//   - Nth > 0: arm only from the Nth matching occurrence onward.
//   - Count > 0: inject at most Count faults; Count == 0 with Nth set
//     means exactly one, Count == 0 with Nth == 0 means unlimited.
//   - Prob in (0,1): gate each armed occurrence on a coin flip from
//     the rule's own seeded generator (deterministic per seed).
type Rule struct {
	Op    Op
	Kind  Kind
	Peer  string        // substring match on the peer address; "" = any
	Nth   int           // 1-based arming occurrence; 0 = every occurrence
	Count int           // max injections; 0 = once (with Nth) or unlimited
	Prob  float64       // injection probability; 0 or 1 = always
	Delay time.Duration // KindDelay stall (default 1ms)
	Bytes int           // KindShort / KindDrop byte allowance
}

func (r Rule) delay() time.Duration {
	if r.Delay <= 0 {
		return time.Millisecond
	}
	return r.Delay
}

func (r Rule) String() string {
	s := fmt.Sprintf("%s:%s", r.Kind, r.Op)
	if r.Peer != "" {
		s += ":peer=" + r.Peer
	}
	if r.Nth > 0 {
		s += fmt.Sprintf(":nth=%d", r.Nth)
	}
	if r.Count > 0 {
		s += fmt.Sprintf(":count=%d", r.Count)
	}
	if r.Prob > 0 && r.Prob < 1 {
		s += fmt.Sprintf(":prob=%g", r.Prob)
	}
	if r.Delay > 0 {
		s += fmt.Sprintf(":delay=%s", r.Delay)
	}
	if r.Bytes > 0 {
		s += fmt.Sprintf(":bytes=%d", r.Bytes)
	}
	return s
}

// Plan is a seeded set of fault rules. The zero plan injects nothing.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// Event records one injected fault, in injection order.
type Event struct {
	Seq        uint64 // global operation sequence number at injection
	Rule       int    // index of the firing rule in the plan
	Op         Op
	Kind       Kind
	Peer       string
	Occurrence int // the rule's matching-occurrence count at injection
}

func (e Event) String() string {
	return fmt.Sprintf("#%d rule%d %s:%s peer=%q occ=%d", e.Seq, e.Rule, e.Kind, e.Op, e.Peer, e.Occurrence)
}

// Stats counts injected faults by kind.
type Stats struct {
	Total    uint64
	Injected [numKinds]uint64
}

// ruleState is one rule's mutable trigger state. Each rule owns a
// generator seeded from (plan seed, rule index) so probabilistic
// rules stay deterministic independent of each other.
type ruleState struct {
	rule  Rule
	rng   *rand.Rand
	hits  int
	fires int
}

// injector is the deterministic decision core shared by the Platform
// wrappers. Its state advances only through decide, so two injectors
// built from the same plan and fed the same operation sequence emit
// identical event logs — the property the chaos suite relies on.
type injector struct {
	mu     sync.Mutex
	rules  []ruleState
	seq    uint64
	events []Event
	stats  Stats
}

func newInjector(plan Plan) *injector {
	in := &injector{rules: make([]ruleState, len(plan.Rules))}
	for i, r := range plan.Rules {
		in.rules[i] = ruleState{
			rule: r,
			rng:  rand.New(rand.NewSource(plan.Seed ^ int64(i+1)*0x9e3779b97f4a7c)),
		}
	}
	return in
}

// decide consumes one operation occurrence and reports the first rule
// that injects a fault for it, if any.
func (in *injector) decide(op Op, peer string) (Rule, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	var fired Rule
	firedOK := false
	for i := range in.rules {
		rs := &in.rules[i]
		r := rs.rule
		if r.Op != op {
			continue
		}
		if r.Peer != "" && !strings.Contains(peer, r.Peer) {
			continue
		}
		// Every matching rule counts the occurrence, whether or not an
		// earlier rule already fired — a rule's Nth refers to the Nth
		// matching operation, independent of the rest of the plan.
		rs.hits++
		if firedOK {
			continue
		}
		if r.Count > 0 && rs.fires >= r.Count {
			continue
		}
		if r.Nth > 0 {
			if rs.hits < r.Nth {
				continue
			}
			if r.Count == 0 && rs.fires >= 1 {
				continue
			}
		}
		if r.Prob > 0 && r.Prob < 1 && rs.rng.Float64() >= r.Prob {
			continue
		}
		rs.fires++
		in.stats.Total++
		in.stats.Injected[r.Kind]++
		in.events = append(in.events, Event{
			Seq: in.seq, Rule: i, Op: op, Kind: r.Kind, Peer: peer, Occurrence: rs.hits,
		})
		fired, firedOK = r, true
	}
	return fired, firedOK
}

func (in *injector) snapshotEvents() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

func (in *injector) snapshotStats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
