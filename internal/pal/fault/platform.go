package fault

import (
	"io"
	"net"
	"syscall"
	"time"

	"motor/internal/pal"
)

// Platform wraps an inner pal.Platform and injects the plan's faults
// into its dials, accepts, reads and writes. Clock, yield and
// environment services pass through untouched.
type Platform struct {
	inner pal.Platform
	inj   *injector
}

var _ pal.Platform = (*Platform)(nil)

// New builds a fault-injecting platform over inner (pal.Default when
// inner is nil).
func New(inner pal.Platform, plan Plan) *Platform {
	if inner == nil {
		inner = pal.Default
	}
	return &Platform{inner: inner, inj: newInjector(plan)}
}

// Events returns the faults injected so far, in injection order.
// Identical plan + seed + operation sequence yields an identical log.
func (p *Platform) Events() []Event { return p.inj.snapshotEvents() }

// Stats returns injection counters by kind.
func (p *Platform) Stats() Stats { return p.inj.snapshotStats() }

// Ticks implements pal.Platform.
func (p *Platform) Ticks() int64 { return p.inner.Ticks() }

// Yield implements pal.Platform.
func (p *Platform) Yield() { p.inner.Yield() }

// Getenv implements pal.Platform.
func (p *Platform) Getenv(key string) string { return p.inner.Getenv(key) }

// Listen implements pal.Platform; accepted connections are wrapped
// with the injector.
func (p *Platform) Listen(addr string) (net.Listener, error) {
	ln, err := p.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{Listener: ln, inj: p.inj}, nil
}

// Dial implements pal.Platform with OpDial rules applied; successful
// connections are wrapped with the injector.
func (p *Platform) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	if r, ok := p.inj.decide(OpDial, addr); ok {
		switch r.Kind {
		case KindDelay:
			time.Sleep(r.delay())
		case KindReset, KindDrop:
			// Connection established then torn down immediately.
			if conn, err := p.inner.Dial(addr, timeout); err == nil {
				conn.Close()
			}
			return nil, opErr("dial", syscall.ECONNRESET)
		default:
			return nil, opErr("dial", syscall.ECONNREFUSED)
		}
	}
	conn, err := p.inner.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: conn, inj: p.inj, peer: addr}, nil
}

func opErr(op string, errno syscall.Errno) error {
	return &net.OpError{Op: op, Net: "tcp", Err: errno}
}

// timeoutErr satisfies net.Error with Timeout() true, so partitioned
// reads look exactly like a deadline expiry to the channel's poller.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "fault: injected partition timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// faultListener wraps accepts with OpAccept rules.
type faultListener struct {
	net.Listener
	inj *injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	peer := conn.RemoteAddr().String()
	if r, ok := l.inj.decide(OpAccept, peer); ok {
		switch r.Kind {
		case KindDelay:
			time.Sleep(r.delay())
		default:
			// The connection dies right after the handshake; the
			// caller discovers it on first use.
			conn.Close()
		}
	}
	return &faultConn{Conn: conn, inj: l.inj, peer: peer}, nil
}

// SetDeadline forwards to the inner listener when it supports
// deadlines (the sock bootstrap bounds its mesh accepts with this).
func (l *faultListener) SetDeadline(t time.Time) error {
	if d, ok := l.Listener.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// faultConn applies OpRead / OpWrite rules to one connection.
type faultConn struct {
	net.Conn
	inj  *injector
	peer string
}

func (c *faultConn) Read(p []byte) (int, error) {
	r, ok := c.inj.decide(OpRead, c.peer)
	if !ok {
		return c.Conn.Read(p)
	}
	switch r.Kind {
	case KindDelay:
		time.Sleep(r.delay())
		return c.Conn.Read(p)
	case KindShort:
		n := r.Bytes
		if n < 1 {
			n = 1
		}
		if n > len(p) {
			n = len(p)
		}
		return c.Conn.Read(p[:n])
	case KindDrop:
		n := r.Bytes
		if n > len(p) {
			n = len(p)
		}
		var got int
		if n > 0 {
			got, _ = c.Conn.Read(p[:n])
		}
		c.Conn.Close()
		if got > 0 {
			return got, nil
		}
		return 0, opErr("read", syscall.ECONNRESET)
	case KindPartition:
		// The bytes never arrive: behave like a deadline expiry.
		time.Sleep(r.delay())
		return 0, timeoutErr{}
	default: // KindReset, KindRefuse
		c.Conn.Close()
		return 0, opErr("read", syscall.ECONNRESET)
	}
}

func (c *faultConn) Write(p []byte) (int, error) {
	r, ok := c.inj.decide(OpWrite, c.peer)
	if !ok {
		return c.Conn.Write(p)
	}
	switch r.Kind {
	case KindDelay:
		time.Sleep(r.delay())
		return c.Conn.Write(p)
	case KindShort:
		// Transmit a strict prefix and report a short write: the
		// frame on the wire is now partial.
		n := r.Bytes
		if n >= len(p) {
			n = len(p) / 2
		}
		if n < 0 {
			n = 0
		}
		var wrote int
		if n > 0 {
			wrote, _ = c.Conn.Write(p[:n])
		}
		return wrote, &net.OpError{Op: "write", Net: "tcp", Err: io.ErrShortWrite}
	case KindDrop:
		n := r.Bytes
		if n > len(p) {
			n = len(p)
		}
		var wrote int
		if n > 0 {
			wrote, _ = c.Conn.Write(p[:n])
		}
		c.Conn.Close()
		return wrote, opErr("write", syscall.ECONNRESET)
	case KindPartition:
		// The bytes vanish silently.
		return len(p), nil
	default: // KindReset, KindRefuse
		c.Conn.Close()
		return 0, opErr("write", syscall.ECONNRESET)
	}
}

// SetNoDelay forwards to the inner connection when it is a TCP
// connection (the sock channel disables Nagle after bootstrap).
func (c *faultConn) SetNoDelay(v bool) error {
	if tc, ok := c.Conn.(interface{ SetNoDelay(bool) error }); ok {
		return tc.SetNoDelay(v)
	}
	return nil
}
