package pal

import (
	"io"
	"testing"
	"time"
)

func TestTicksMonotonic(t *testing.T) {
	var p Host
	a := p.Ticks()
	time.Sleep(time.Millisecond)
	b := p.Ticks()
	if b <= a {
		t.Errorf("ticks not monotonic: %d then %d", a, b)
	}
	if b-a < int64(500*time.Microsecond) {
		t.Errorf("tick delta %d implausibly small for a 1ms sleep", b-a)
	}
}

func TestYieldReturns(t *testing.T) {
	var p Host
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			p.Yield()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("yield loop stuck")
	}
}

func TestListenDialRoundtrip(t *testing.T) {
	var p Host
	ln, err := p.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	errc := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		_, err = conn.Write([]byte("pal"))
		errc <- err
	}()

	conn, err := p.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 3)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pal" {
		t.Errorf("read %q", buf)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestGetenv(t *testing.T) {
	var p Host
	t.Setenv("MOTOR_PAL_TEST", "value42")
	if got := p.Getenv("MOTOR_PAL_TEST"); got != "value42" {
		t.Errorf("getenv %q", got)
	}
	if got := p.Getenv("MOTOR_PAL_TEST_MISSING_XYZ"); got != "" {
		t.Errorf("missing env %q", got)
	}
}

func TestDefaultIsHost(t *testing.T) {
	if _, ok := Default.(Host); !ok {
		t.Errorf("Default platform is %T", Default)
	}
}
