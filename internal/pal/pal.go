// Package pal is the Platform Adaptation Layer: the virtual subset of
// operating-system services the Motor runtime and message-passing
// core consume. Mirroring the SSCLI's PAL (paper §5.4), everything
// above this package is platform-agnostic; porting Motor to a new
// transport or platform means supplying a new Platform implementation
// here, not touching the runtime.
package pal

import (
	"net"
	"os"
	"runtime"
	"time"
)

// Platform virtualizes the host services Motor needs: a monotonic
// clock, scheduling yield, environment access, and a socket factory
// for the sock channel.
type Platform interface {
	// Ticks returns a monotonic timestamp in nanoseconds.
	Ticks() int64
	// Yield relinquishes the processor briefly (used inside
	// polling-waits so a spinning progress loop stays polite).
	Yield()
	// Getenv reads a host environment variable.
	Getenv(key string) string
	// Listen opens a stream listener on the given address
	// ("host:port", empty port picks a free one).
	Listen(addr string) (net.Listener, error)
	// Dial connects a stream socket.
	Dial(addr string, timeout time.Duration) (net.Conn, error)
}

// Host is the real operating-system platform.
type Host struct{}

var start = time.Now()

// Ticks implements Platform using the Go monotonic clock.
func (Host) Ticks() int64 { return int64(time.Since(start)) }

// Yield implements Platform.
func (Host) Yield() { runtime.Gosched() }

// Getenv implements Platform.
func (Host) Getenv(key string) string { return os.Getenv(key) }

// Listen implements Platform over TCP.
func (Host) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return net.Listen("tcp", addr)
}

// Dial implements Platform over TCP.
func (Host) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// Default is the host platform instance used when a component is not
// configured with an explicit Platform.
var Default Platform = Host{}
